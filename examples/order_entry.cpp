// Order-entry example (§1's TPC-C motivation): runs the full TPC-C mix on
// an FW-KV cluster and demonstrates the Order-Status property — the
// read-only transaction's first access retrieves warehouse-homed data at
// the latest version, and subsequent reads are consistent with it — by
// reporting read freshness alongside throughput.
//
//   $ ./build/examples/order_entry
#include <iostream>

#include "runtime/driver.hpp"
#include "runtime/report.hpp"
#include "workload/tpcc.hpp"

int main() {
  using namespace fwkv;
  using runtime::Table;

  constexpr std::uint32_t kNodes = 4;

  Table table("TPC-C on a 4-node cluster (2 warehouses/node, 50% read-only)",
              {"protocol", "kTx/s", "abort rate", "stale reads",
               "mean latency (us)"});

  for (Protocol protocol :
       {Protocol::kFwKv, Protocol::kWalter, Protocol::kTwoPC}) {
    ClusterConfig config;
    config.num_nodes = kNodes;
    config.protocol = protocol;
    config.net.one_way_latency = std::chrono::microseconds(100);
    config.mapper = tpcc::TpccWorkload::make_mapper(kNodes);
    Cluster cluster(config);

    tpcc::TpccConfig tcfg;
    tcfg.warehouses_per_node = 2;
    tcfg.customers_per_district = 30;
    tcfg.items = 300;
    tcfg.read_only_ratio = 0.5;
    tpcc::TpccWorkload workload(tcfg, kNodes);
    workload.load(cluster);

    runtime::DriverConfig dcfg;
    dcfg.clients_per_node = 3;
    dcfg.warmup = std::chrono::milliseconds(100);
    dcfg.measure = std::chrono::milliseconds(600);
    auto result = runtime::run_driver(cluster, workload, dcfg);

    table.add_row({protocol_name(protocol),
                   Table::fmt(result.throughput_tps() / 1000.0, 2),
                   Table::fmt_pct(result.abort_rate()),
                   Table::fmt_pct(result.stale_read_fraction(), 2),
                   Table::fmt(result.mean_latency_us(), 0)});
    cluster.quiesce();
  }
  table.print(std::cout);
  std::cout << "FW-KV's Order-Status transactions read warehouse rows at the\n"
               "latest committed version; Walter's may serve stale rows (see\n"
               "the stale-read column), and 2PC pays a full commit round for\n"
               "every read-only transaction.\n";
  return 0;
}
