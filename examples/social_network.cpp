// The paper's motivating scenario (§1, §3.3): a social network where users
// increasingly expect to see each other's posts in a sensible order.
//
// Alice posts on her home node; she then tells Bob (out of band), and Bob
// replies on *his* home node. Readers on other nodes run read-only
// transactions over both timelines. Under Walter, a reader whose node has
// not received the asynchronous propagation yet can see Bob's reply but
// miss Alice's original post — the client-visible long-fork of Fig. 1.
// Under FW-KV the first access to each node returns the latest committed
// version, so a reply can never be observed without its cause.
//
//   $ ./build/examples/social_network
#include <iostream>
#include <thread>

#include "core/cluster.hpp"
#include "core/session.hpp"

namespace {

using namespace fwkv;

struct Observation {
  std::string alice;
  std::string bob;
};

Observation run_scenario(Protocol protocol) {
  ClusterConfig config;
  config.num_nodes = 4;
  config.protocol = protocol;
  config.net.one_way_latency = std::chrono::microseconds(100);
  // Alice's propagation is stuck behind congestion (20 ms); by the time
  // Bob replies the congestion has cleared, so his propagation overtakes
  // hers — "receiving propagate from different nodes in different orders
  // is a likely scenario in an asynchronous distributed system" (§3.3).
  config.net.propagate_extra_delay = std::chrono::milliseconds(20);
  Cluster cluster(config);

  // Pick one timeline key homed on node 0 and one homed on node 1.
  Key alice_wall = 0;
  while (cluster.node_for_key(alice_wall) != 0) ++alice_wall;
  Key bob_wall = alice_wall + 1;
  while (cluster.node_for_key(bob_wall) != 1) ++bob_wall;
  cluster.load(alice_wall, "(no post yet)");
  cluster.load(bob_wall, "(no post yet)");

  // Alice posts from her home node; the commit is local and fast.
  Session alice = cluster.make_session(0, 0);
  Transaction post = alice.begin();
  alice.write(post, alice_wall, "Alice: we're engaged!");
  alice.commit(post);

  // Wait until Alice's propagation batch has been handed to the (congested)
  // network, then let the congestion clear.
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  cluster.network().set_propagate_extra_delay(std::chrono::microseconds(200));

  // Alice texts Bob; Bob reads her post *on her node* and replies on his.
  // The congestion has cleared, so Bob's commit propagates quickly and
  // overtakes Alice's still-delayed propagation.
  Session bob = cluster.make_session(1, 0);
  Transaction reply = bob.begin();
  bob.read(reply, alice_wall);
  bob.write(reply, bob_wall, "Bob: congratulations you two!");
  bob.commit(reply);

  // Give Bob's (fast) propagation time to arrive everywhere while Alice's
  // is still in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));

  // A follower on node 3 now refreshes the combined timeline.
  Session carol = cluster.make_session(3, 0);
  Transaction timeline = carol.begin(/*read_only=*/true);
  Observation seen;
  seen.bob = carol.read(timeline, bob_wall).value();
  seen.alice = carol.read(timeline, alice_wall).value();
  carol.commit(timeline);
  cluster.quiesce();
  return seen;
}

}  // namespace

int main() {
  for (Protocol p : {Protocol::kWalter, Protocol::kFwKv}) {
    auto seen = run_scenario(p);
    std::cout << protocol_name(p) << " timeline on a remote node:\n"
              << "  bob's wall  : " << seen.bob << "\n"
              << "  alice's wall: " << seen.alice << "\n";
    const bool anomaly = seen.bob.find("congratulations") != std::string::npos &&
                         seen.alice.find("engaged") == std::string::npos;
    std::cout << (anomaly
                      ? "  -> ANOMALY: the reply is visible but the original "
                        "post is not (stale first read)\n\n"
                      : "  -> consistent: fresh first reads show the post "
                        "before (or with) the reply\n\n");
  }
  return 0;
}
