// Command-line experiment driver: run any protocol/workload combination
// without writing code.
//
//   $ ./build/examples/fwkv_cli --protocol fwkv --workload ycsb \
//         --nodes 10 --keys 50000 --ro 0.2 --ms 1000 --delay-us 1000
//   $ ./build/examples/fwkv_cli --protocol walter --workload tpcc \
//         --nodes 5 --warehouses 8 --ro 0.5
#include <cstring>
#include <iostream>
#include <string>

#include "runtime/driver.hpp"
#include "runtime/report.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

namespace {

using namespace fwkv;

struct CliOptions {
  Protocol protocol = Protocol::kFwKv;
  std::string workload = "ycsb";
  std::uint32_t nodes = 5;
  std::uint64_t keys = 50'000;
  std::uint32_t warehouses = 8;
  double read_only = 0.2;
  double zipf = 0.0;
  std::uint32_t clients = 5;
  long measure_ms = 1000;
  long latency_us = 200;
  long propagate_delay_us = 0;
  bool verbose_stats = false;
};

void usage() {
  std::cout <<
      "fwkv_cli — run an FW-KV / Walter / 2PC experiment\n"
      "  --protocol fwkv|walter|2pc   concurrency control (default fwkv)\n"
      "  --workload ycsb|tpcc         benchmark (default ycsb)\n"
      "  --nodes N                    cluster size (default 5)\n"
      "  --keys N                     YCSB key count (default 50000)\n"
      "  --zipf THETA                 YCSB skew, 0 = uniform\n"
      "  --warehouses N               TPC-C warehouses per node (default 8)\n"
      "  --ro FRACTION                read-only share (default 0.2)\n"
      "  --clients N                  closed-loop clients per node\n"
      "  --ms N                       measurement window (default 1000)\n"
      "  --latency-us N               one-way network latency (default 200)\n"
      "  --delay-us N                 extra Propagate delay (default 0)\n"
      "  --stats                      print node-side counters too\n";
}

bool parse(int argc, char** argv, CliOptions& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--help" || arg == "-h") return false;
    if (arg == "--stats") {
      opts.verbose_stats = true;
      continue;
    }
    const char* value = next();
    if (value == nullptr) {
      std::cerr << "missing value for " << arg << "\n";
      return false;
    }
    if (arg == "--protocol") {
      if (std::strcmp(value, "fwkv") == 0) {
        opts.protocol = Protocol::kFwKv;
      } else if (std::strcmp(value, "walter") == 0) {
        opts.protocol = Protocol::kWalter;
      } else if (std::strcmp(value, "2pc") == 0) {
        opts.protocol = Protocol::kTwoPC;
      } else {
        std::cerr << "unknown protocol " << value << "\n";
        return false;
      }
    } else if (arg == "--workload") {
      opts.workload = value;
    } else if (arg == "--nodes") {
      opts.nodes = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--keys") {
      opts.keys = static_cast<std::uint64_t>(std::atoll(value));
    } else if (arg == "--zipf") {
      opts.zipf = std::atof(value);
    } else if (arg == "--warehouses") {
      opts.warehouses = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--ro") {
      opts.read_only = std::atof(value);
    } else if (arg == "--clients") {
      opts.clients = static_cast<std::uint32_t>(std::atoi(value));
    } else if (arg == "--ms") {
      opts.measure_ms = std::atol(value);
    } else if (arg == "--latency-us") {
      opts.latency_us = std::atol(value);
    } else if (arg == "--delay-us") {
      opts.propagate_delay_us = std::atol(value);
    } else {
      std::cerr << "unknown option " << arg << "\n";
      return false;
    }
  }
  return opts.nodes > 0 && opts.measure_ms > 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse(argc, argv, opts)) {
    usage();
    return 1;
  }

  ClusterConfig cfg;
  cfg.num_nodes = opts.nodes;
  cfg.protocol = opts.protocol;
  cfg.net.one_way_latency = std::chrono::microseconds(opts.latency_us);
  cfg.net.propagate_extra_delay =
      std::chrono::microseconds(opts.propagate_delay_us);

  std::unique_ptr<runtime::Workload> workload;
  if (opts.workload == "tpcc") {
    cfg.mapper = tpcc::TpccWorkload::make_mapper(opts.nodes);
    tpcc::TpccConfig tcfg;
    tcfg.warehouses_per_node = opts.warehouses;
    tcfg.read_only_ratio = opts.read_only;
    tcfg.customers_per_district = 40;
    tcfg.items = 500;
    workload = std::make_unique<tpcc::TpccWorkload>(tcfg, opts.nodes);
  } else if (opts.workload == "ycsb") {
    ycsb::YcsbConfig ycfg;
    ycfg.total_keys = opts.keys;
    ycfg.read_only_ratio = opts.read_only;
    ycfg.zipf_theta = opts.zipf;
    workload = std::make_unique<ycsb::YcsbWorkload>(ycfg);
  } else {
    std::cerr << "unknown workload " << opts.workload << "\n";
    return 1;
  }

  Cluster cluster(cfg);
  std::cout << "loading " << opts.workload << " ...\n";
  workload->load(cluster);

  runtime::DriverConfig dcfg;
  dcfg.clients_per_node = opts.clients;
  dcfg.measure = std::chrono::milliseconds(opts.measure_ms);
  std::cout << "running " << protocol_name(opts.protocol) << " on "
            << opts.nodes << " nodes, " << opts.clients
            << " clients/node, " << opts.measure_ms << " ms ...\n";
  auto result = runtime::run_driver(cluster, *workload, dcfg);
  std::cout << result.summary() << "\n";
  std::cout << "stale reads: "
            << runtime::Table::fmt_pct(result.stale_read_fraction(), 2)
            << ", mean freshness gap: "
            << runtime::Table::fmt(result.mean_freshness_gap(), 3)
            << " versions\n";
  if (opts.verbose_stats) {
    const auto& n = result.nodes;
    std::cout << "node counters: reads=" << n.reads_served
              << " installs=" << n.versions_installed
              << " propagates=" << n.propagates_applied
              << " removes=" << n.removes_processed
              << " buffered=" << n.events_buffered
              << " aborts(lock/val/vote)=" << n.aborts_lock << "/"
              << n.aborts_validation << "/" << n.aborts_vote_timeout << "\n";
    for (int t = 0; t < static_cast<int>(net::kNumMessageTypes); ++t) {
      const auto mt = static_cast<net::MessageType>(t);
      std::cout << "  " << net::type_name(mt) << ": "
                << cluster.network().messages_sent(mt) << "\n";
    }
  }
  return 0;
}
