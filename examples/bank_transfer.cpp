// Money-conservation demo: concurrent transfer transactions read and write
// the same keys, which (as the paper notes for its YCSB configuration)
// makes the PSI execution equivalent to a serializable one — so the total
// balance across all accounts is invariant. The example hammers a small
// account set from every node and then audits the books.
//
//   $ ./build/examples/bank_transfer
#include <atomic>
#include <iostream>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/session.hpp"

namespace {

using namespace fwkv;

std::int64_t parse(const Value& v) { return std::strtoll(v.c_str(), nullptr, 10); }

}  // namespace

int main() {
  constexpr std::uint32_t kNodes = 4;
  constexpr Key kAccounts = 64;
  constexpr std::int64_t kInitialBalance = 1000;

  ClusterConfig config;
  config.num_nodes = kNodes;
  config.protocol = Protocol::kFwKv;
  config.net.one_way_latency = std::chrono::microseconds(50);
  Cluster cluster(config);

  for (Key account = 0; account < kAccounts; ++account) {
    cluster.load(account, std::to_string(kInitialBalance));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> transfers{0};
  std::atomic<std::uint64_t> aborts{0};

  std::vector<std::thread> tellers;
  for (std::uint32_t n = 0; n < kNodes; ++n) {
    for (std::uint32_t c = 0; c < 2; ++c) {
      tellers.emplace_back([&, n, c] {
        Session session = cluster.make_session(n, c);
        Rng rng(n * 31 + c + 7);
        while (!stop.load(std::memory_order_acquire)) {
          Key from = rng.next_below(kAccounts);
          Key to = rng.next_below(kAccounts);
          if (from == to) continue;
          const auto amount = static_cast<std::int64_t>(rng.next_range(1, 50));

          Transaction tx = session.begin();
          auto from_balance = session.read(tx, from);
          auto to_balance = session.read(tx, to);
          if (!from_balance || !to_balance) continue;
          if (parse(*from_balance) < amount) {
            session.abort(tx);
            continue;  // insufficient funds; not an anomaly
          }
          session.write(tx, from, std::to_string(parse(*from_balance) - amount));
          session.write(tx, to, std::to_string(parse(*to_balance) + amount));
          if (session.commit(tx)) {
            transfers.fetch_add(1, std::memory_order_relaxed);
          } else {
            aborts.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true, std::memory_order_release);
  for (auto& t : tellers) t.join();
  cluster.quiesce();

  // Audit: one read-only transaction sums every account.
  Session auditor = cluster.make_session(0, 99);
  Transaction audit = auditor.begin(/*read_only=*/true);
  std::int64_t total = 0;
  for (Key account = 0; account < kAccounts; ++account) {
    total += parse(auditor.read(audit, account).value());
  }
  auditor.commit(audit);

  const std::int64_t expected = kInitialBalance * kAccounts;
  std::cout << "transfers committed: " << transfers.load()
            << ", aborted: " << aborts.load() << "\n"
            << "total balance: " << total << " (expected " << expected << ")\n"
            << (total == expected ? "books balance: no lost or duplicated "
                                    "updates under concurrent transfers\n"
                                  : "BOOKS DO NOT BALANCE — bug!\n");
  return total == expected ? 0 : 1;
}
