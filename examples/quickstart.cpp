// Quickstart: boot a 3-node FW-KV cluster, run an update transaction and a
// read-only transaction, and peek at the protocol state.
//
//   $ ./build/examples/quickstart
#include <iostream>

#include "core/cluster.hpp"
#include "core/session.hpp"

int main() {
  using namespace fwkv;

  // 1. Configure and start a simulated cluster. Every node runs the FW-KV
  //    concurrency control; keys are placed by consistent hashing.
  ClusterConfig config;
  config.num_nodes = 3;
  config.protocol = Protocol::kFwKv;
  config.net.one_way_latency = std::chrono::microseconds(50);
  Cluster cluster(config);

  // 2. Bulk-load initial data (installed as version 1 on the preferred
  //    node of each key).
  for (Key k = 0; k < 10; ++k) {
    cluster.load(k, "initial-" + std::to_string(k));
  }

  // 3. Clients are sessions bound to a node. Transactions begin on the
  //    client's node and may read or write keys stored anywhere.
  Session alice = cluster.make_session(/*node=*/0, /*client_id=*/0);

  Transaction tx = alice.begin();
  std::cout << "read key 4 -> " << alice.read(tx, 4).value() << "\n";
  alice.write(tx, 4, "updated-by-alice");
  std::cout << "read-your-writes -> " << alice.read(tx, 4).value() << "\n";
  if (alice.commit(tx)) {
    std::cout << "update transaction committed\n";
  }
  cluster.quiesce();

  // 4. Read-only transactions are declared up front; they never abort and,
  //    with FW-KV, their first access to each node sees the latest
  //    committed version.
  Session bob = cluster.make_session(/*node=*/1, /*client_id=*/0);
  Transaction ro = bob.begin(/*read_only=*/true);
  std::cout << "bob reads key 4 -> " << bob.read(ro, 4).value() << "\n";
  bob.commit(ro);

  // 5. Cluster-wide statistics.
  auto stats = cluster.aggregate_stats();
  std::cout << "commits: " << stats.total_commits()
            << " (read-only: " << stats.ro_commits
            << "), reads served: " << stats.reads_served
            << ", versions installed: " << stats.versions_installed << "\n";
  return 0;
}
