// TPC-C ported to the key-value model (§5: "TPC-C ... ported to the
// key-value data model"). Each relational row becomes one KV pair; the key
// packs (table, warehouse, district, entity ids) into the flat 64-bit key
// space and rows are serialized with the same binary codec the network
// uses.
//
// Cardinalities are configurable and scaled down from the TPC-C spec (3000
// customers/district, 100k items) so a simulated 20-node cluster loads in
// milliseconds; the *access hierarchy* — warehouse at the top, district
// sequence numbers as the contention points — is preserved, which is what
// drives the paper's Figs. 8/9.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/key_mapper.hpp"

namespace fwkv::tpcc {

enum class Table : std::uint8_t {
  kWarehouse = 1,
  kDistrict = 2,
  kCustomer = 3,
  kItem = 4,
  kStock = 5,
  kOrder = 6,
  kNewOrder = 7,
  kOrderLine = 8,
  kHistory = 9,
  kCustomerLastOrder = 10,  // index: (w,d,c) -> most recent order id
};

/// Key layout: [ table:6 | warehouse:14 | district:6 | a:22 | b:16 ].
/// `a` holds the entity id (customer, item, order); `b` holds the order
/// line number or a uniquifier.
constexpr Key make_key(Table t, std::uint32_t w, std::uint32_t d,
                       std::uint32_t a, std::uint32_t b = 0) {
  return (static_cast<Key>(static_cast<std::uint8_t>(t) & 0x3F) << 58) |
         (static_cast<Key>(w & 0x3FFF) << 44) |
         (static_cast<Key>(d & 0x3F) << 38) |
         (static_cast<Key>(a & 0x3FFFFF) << 16) | (b & 0xFFFF);
}

constexpr Table table_of(Key k) {
  return static_cast<Table>((k >> 58) & 0x3F);
}
constexpr std::uint32_t warehouse_of(Key k) {
  return static_cast<std::uint32_t>((k >> 44) & 0x3FFF);
}
constexpr std::uint32_t district_of(Key k) {
  return static_cast<std::uint32_t>((k >> 38) & 0x3F);
}
constexpr std::uint32_t entity_of(Key k) {
  return static_cast<std::uint32_t>((k >> 16) & 0x3FFFFF);
}
constexpr std::uint32_t sub_of(Key k) {
  return static_cast<std::uint32_t>(k & 0xFFFF);
}

inline Key warehouse_key(std::uint32_t w) {
  return make_key(Table::kWarehouse, w, 0, 0);
}
inline Key district_key(std::uint32_t w, std::uint32_t d) {
  return make_key(Table::kDistrict, w, d, 0);
}
inline Key customer_key(std::uint32_t w, std::uint32_t d, std::uint32_t c) {
  return make_key(Table::kCustomer, w, d, c);
}
inline Key item_key(std::uint32_t i) { return make_key(Table::kItem, 0, 0, i); }
inline Key stock_key(std::uint32_t w, std::uint32_t i) {
  return make_key(Table::kStock, w, 0, i);
}
inline Key order_key(std::uint32_t w, std::uint32_t d, std::uint32_t o) {
  return make_key(Table::kOrder, w, d, o);
}
inline Key new_order_key(std::uint32_t w, std::uint32_t d, std::uint32_t o) {
  return make_key(Table::kNewOrder, w, d, o);
}
inline Key order_line_key(std::uint32_t w, std::uint32_t d, std::uint32_t o,
                          std::uint32_t l) {
  return make_key(Table::kOrderLine, w, d, o, l);
}
inline Key history_key(std::uint32_t w, std::uint32_t d, std::uint32_t a,
                       std::uint32_t b) {
  return make_key(Table::kHistory, w, d, a, b);
}
inline Key customer_last_order_key(std::uint32_t w, std::uint32_t d,
                                   std::uint32_t c) {
  return make_key(Table::kCustomerLastOrder, w, d, c);
}

// ---------------------------------------------------------------------------
// Rows. Money is in cents (int64), rates in basis points (uint32).
// ---------------------------------------------------------------------------

struct WarehouseRow {
  std::string name;
  std::string street;
  std::string city;
  std::string state;
  std::string zip;
  std::uint32_t tax_bp = 0;  // 0..2000 (0-20%)
  std::int64_t ytd_cents = 0;

  Value encode() const;
  static std::optional<WarehouseRow> decode(const Value& v);
};

struct DistrictRow {
  std::string name;
  std::string street;
  std::string city;
  std::uint32_t tax_bp = 0;
  std::int64_t ytd_cents = 0;
  /// D_NEXT_O_ID: the NewOrder sequence, TPC-C's hottest write.
  std::uint32_t next_o_id = 1;
  /// Lowest order id not yet delivered (drives the Delivery profile).
  std::uint32_t next_delivery_o_id = 1;

  Value encode() const;
  static std::optional<DistrictRow> decode(const Value& v);
};

struct CustomerRow {
  std::string first;
  std::string last;
  std::string street;
  std::string city;
  std::string phone;
  std::string credit;  // "GC" / "BC"
  std::uint32_t discount_bp = 0;
  std::int64_t credit_lim_cents = 0;
  std::int64_t balance_cents = 0;
  std::int64_t ytd_payment_cents = 0;
  std::uint32_t payment_cnt = 0;
  std::uint32_t delivery_cnt = 0;

  Value encode() const;
  static std::optional<CustomerRow> decode(const Value& v);
};

struct ItemRow {
  std::string name;
  std::int64_t price_cents = 0;
  std::string data;

  Value encode() const;
  static std::optional<ItemRow> decode(const Value& v);
};

struct StockRow {
  std::int32_t quantity = 0;
  std::int64_t ytd = 0;
  std::uint32_t order_cnt = 0;
  std::uint32_t remote_cnt = 0;
  std::string dist_info;

  Value encode() const;
  static std::optional<StockRow> decode(const Value& v);
};

struct OrderRow {
  std::uint32_t c_id = 0;
  std::uint64_t entry_d = 0;  // logical timestamp supplied by the client
  std::uint32_t carrier_id = 0;  // 0 = undelivered
  std::uint32_t ol_cnt = 0;
  bool all_local = true;

  Value encode() const;
  static std::optional<OrderRow> decode(const Value& v);
};

struct NewOrderRow {
  bool pending = true;

  Value encode() const;
  static std::optional<NewOrderRow> decode(const Value& v);
};

struct OrderLineRow {
  std::uint32_t i_id = 0;
  std::uint32_t supply_w_id = 0;
  std::uint64_t delivery_d = 0;  // 0 = undelivered
  std::uint32_t quantity = 0;
  std::int64_t amount_cents = 0;
  std::string dist_info;

  Value encode() const;
  static std::optional<OrderLineRow> decode(const Value& v);
};

struct HistoryRow {
  std::uint32_t c_id = 0;
  std::int64_t amount_cents = 0;
  std::uint64_t date = 0;
  std::string data;

  Value encode() const;
  static std::optional<HistoryRow> decode(const Value& v);
};

struct CustomerLastOrderRow {
  std::uint32_t o_id = 0;  // 0 = customer has never ordered

  Value encode() const;
  static std::optional<CustomerLastOrderRow> decode(const Value& v);
};

/// Warehouse-home placement: every row of warehouse `w` (and its districts,
/// customers, stock, orders) lives on node `w % num_nodes`; items, which
/// have no warehouse, are spread by hash. This realizes the paper's
/// "preferred site" arrangement where a transaction that picks a warehouse
/// co-located with its node is local.
class TpccKeyMapper final : public KeyMapper {
 public:
  explicit TpccKeyMapper(std::uint32_t num_nodes) : num_nodes_(num_nodes) {}
  NodeId node_for(Key key) const override;

 private:
  std::uint32_t num_nodes_;
};

}  // namespace fwkv::tpcc
