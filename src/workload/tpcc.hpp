// TPC-C workload: five transaction profiles over the KV-mapped schema.
//
// Update profiles:  NewOrder, Payment, Delivery.
// Read-only:        OrderStatus, StockLevel.
//
// The paper's §1 motivating example lives here: Order-Status is the
// read-only transaction whose first access retrieves the warehouse's data
// and whose subsequent reads hit objects committed along with it, so FW-KV
// always serves it the latest snapshot.
#pragma once

#include <cstdint>
#include <memory>

#include "runtime/driver.hpp"
#include "workload/tpcc_schema.hpp"

namespace fwkv::tpcc {

struct TpccConfig {
  /// W/n in the paper's Figs. 8/9 (8, 16 or 32).
  std::uint32_t warehouses_per_node = 16;
  std::uint32_t districts_per_warehouse = 10;
  /// Scaled from the spec's 3000 (see tpcc_schema.hpp header comment).
  std::uint32_t customers_per_district = 120;
  /// Scaled from the spec's 100000.
  std::uint32_t items = 2000;
  std::uint32_t initial_orders_per_district = 3;

  /// Fraction of read-only transactions (paper: 0.2 / 0.5). Within the
  /// read-only share, OrderStatus:StockLevel = 70:30; within the update
  /// share, NewOrder:Payment:Delivery ~ 47:45:8.
  double read_only_ratio = 0.2;

  /// NewOrder lines per order (spec: 5..15).
  std::uint32_t min_lines = 5;
  std::uint32_t max_lines = 15;
  /// Probability an order line is supplied by a remote warehouse (spec 1%).
  double remote_supply_prob = 0.01;
  /// Probability Payment pays a customer of a remote warehouse (spec 15%).
  double remote_payment_prob = 0.15;

  std::uint32_t max_retries = 1000;
};

enum class Profile : std::uint8_t {
  kNewOrder,
  kPayment,
  kDelivery,
  kOrderStatus,
  kStockLevel,
};
inline constexpr std::size_t kNumProfiles = 5;

inline const char* profile_name(Profile p) {
  switch (p) {
    case Profile::kNewOrder:
      return "NewOrder";
    case Profile::kPayment:
      return "Payment";
    case Profile::kDelivery:
      return "Delivery";
    case Profile::kOrderStatus:
      return "OrderStatus";
    case Profile::kStockLevel:
      return "StockLevel";
  }
  return "?";
}

inline bool profile_is_read_only(Profile p) {
  return p == Profile::kOrderStatus || p == Profile::kStockLevel;
}

class TpccWorkload final : public runtime::Workload {
 public:
  TpccWorkload(TpccConfig config, std::uint32_t num_nodes);

  /// Total warehouses = warehouses_per_node * num_nodes.
  std::uint32_t total_warehouses() const { return total_warehouses_; }
  const TpccConfig& config() const { return config_; }

  /// The placement the cluster must be configured with.
  static std::shared_ptr<const KeyMapper> make_mapper(std::uint32_t num_nodes);

  void load(Cluster& cluster) override;
  void execute_one(Session& session, Rng& rng,
                   runtime::ClientStats& stats) override;

  /// Profile selection (exposed for mix tests).
  Profile pick_profile(Rng& rng) const;

  // Individual profiles; return true if the logical transaction committed.
  // Exposed for unit tests and the freshness experiments.
  bool run_new_order(Session& s, Rng& rng, runtime::ClientStats& stats);
  bool run_payment(Session& s, Rng& rng, runtime::ClientStats& stats);
  bool run_delivery(Session& s, Rng& rng, runtime::ClientStats& stats);
  bool run_order_status(Session& s, Rng& rng, runtime::ClientStats& stats);
  bool run_stock_level(Session& s, Rng& rng, runtime::ClientStats& stats);

 private:
  std::uint32_t pick_warehouse(Rng& rng) const;
  std::uint32_t pick_district(Rng& rng) const;
  std::uint32_t pick_customer(Rng& rng) const;
  std::uint32_t pick_item(Rng& rng) const;

  TpccConfig config_;
  std::uint32_t num_nodes_;
  std::uint32_t total_warehouses_;
};

}  // namespace fwkv::tpcc
