#include "workload/tpcc_schema.hpp"

#include "common/consistent_hash.hpp"
#include "net/codec.hpp"

namespace fwkv::tpcc {
namespace {

using net::Decoder;
using net::Encoder;

Value finish(Encoder& e) {
  auto bytes = e.take();
  return Value(bytes.begin(), bytes.end());
}

std::vector<std::uint8_t> to_bytes(const Value& v) {
  return std::vector<std::uint8_t>(v.begin(), v.end());
}

}  // namespace

Value WarehouseRow::encode() const {
  Encoder e;
  e.put_string(name);
  e.put_string(street);
  e.put_string(city);
  e.put_string(state);
  e.put_string(zip);
  e.put_u32(tax_bp);
  e.put_u64(static_cast<std::uint64_t>(ytd_cents));
  return finish(e);
}

std::optional<WarehouseRow> WarehouseRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  WarehouseRow r;
  r.name = d.get_string();
  r.street = d.get_string();
  r.city = d.get_string();
  r.state = d.get_string();
  r.zip = d.get_string();
  r.tax_bp = d.get_u32();
  r.ytd_cents = static_cast<std::int64_t>(d.get_u64());
  if (!d.ok()) return std::nullopt;
  return r;
}

Value DistrictRow::encode() const {
  Encoder e;
  e.put_string(name);
  e.put_string(street);
  e.put_string(city);
  e.put_u32(tax_bp);
  e.put_u64(static_cast<std::uint64_t>(ytd_cents));
  e.put_u32(next_o_id);
  e.put_u32(next_delivery_o_id);
  return finish(e);
}

std::optional<DistrictRow> DistrictRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  DistrictRow r;
  r.name = d.get_string();
  r.street = d.get_string();
  r.city = d.get_string();
  r.tax_bp = d.get_u32();
  r.ytd_cents = static_cast<std::int64_t>(d.get_u64());
  r.next_o_id = d.get_u32();
  r.next_delivery_o_id = d.get_u32();
  if (!d.ok()) return std::nullopt;
  return r;
}

Value CustomerRow::encode() const {
  Encoder e;
  e.put_string(first);
  e.put_string(last);
  e.put_string(street);
  e.put_string(city);
  e.put_string(phone);
  e.put_string(credit);
  e.put_u32(discount_bp);
  e.put_u64(static_cast<std::uint64_t>(credit_lim_cents));
  e.put_u64(static_cast<std::uint64_t>(balance_cents));
  e.put_u64(static_cast<std::uint64_t>(ytd_payment_cents));
  e.put_u32(payment_cnt);
  e.put_u32(delivery_cnt);
  return finish(e);
}

std::optional<CustomerRow> CustomerRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  CustomerRow r;
  r.first = d.get_string();
  r.last = d.get_string();
  r.street = d.get_string();
  r.city = d.get_string();
  r.phone = d.get_string();
  r.credit = d.get_string();
  r.discount_bp = d.get_u32();
  r.credit_lim_cents = static_cast<std::int64_t>(d.get_u64());
  r.balance_cents = static_cast<std::int64_t>(d.get_u64());
  r.ytd_payment_cents = static_cast<std::int64_t>(d.get_u64());
  r.payment_cnt = d.get_u32();
  r.delivery_cnt = d.get_u32();
  if (!d.ok()) return std::nullopt;
  return r;
}

Value ItemRow::encode() const {
  Encoder e;
  e.put_string(name);
  e.put_u64(static_cast<std::uint64_t>(price_cents));
  e.put_string(data);
  return finish(e);
}

std::optional<ItemRow> ItemRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  ItemRow r;
  r.name = d.get_string();
  r.price_cents = static_cast<std::int64_t>(d.get_u64());
  r.data = d.get_string();
  if (!d.ok()) return std::nullopt;
  return r;
}

Value StockRow::encode() const {
  Encoder e;
  e.put_u32(static_cast<std::uint32_t>(quantity));
  e.put_u64(static_cast<std::uint64_t>(ytd));
  e.put_u32(order_cnt);
  e.put_u32(remote_cnt);
  e.put_string(dist_info);
  return finish(e);
}

std::optional<StockRow> StockRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  StockRow r;
  r.quantity = static_cast<std::int32_t>(d.get_u32());
  r.ytd = static_cast<std::int64_t>(d.get_u64());
  r.order_cnt = d.get_u32();
  r.remote_cnt = d.get_u32();
  r.dist_info = d.get_string();
  if (!d.ok()) return std::nullopt;
  return r;
}

Value OrderRow::encode() const {
  Encoder e;
  e.put_u32(c_id);
  e.put_u64(entry_d);
  e.put_u32(carrier_id);
  e.put_u32(ol_cnt);
  e.put_bool(all_local);
  return finish(e);
}

std::optional<OrderRow> OrderRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  OrderRow r;
  r.c_id = d.get_u32();
  r.entry_d = d.get_u64();
  r.carrier_id = d.get_u32();
  r.ol_cnt = d.get_u32();
  r.all_local = d.get_bool();
  if (!d.ok()) return std::nullopt;
  return r;
}

Value NewOrderRow::encode() const {
  Encoder e;
  e.put_bool(pending);
  return finish(e);
}

std::optional<NewOrderRow> NewOrderRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  NewOrderRow r;
  r.pending = d.get_bool();
  if (!d.ok()) return std::nullopt;
  return r;
}

Value OrderLineRow::encode() const {
  Encoder e;
  e.put_u32(i_id);
  e.put_u32(supply_w_id);
  e.put_u64(delivery_d);
  e.put_u32(quantity);
  e.put_u64(static_cast<std::uint64_t>(amount_cents));
  e.put_string(dist_info);
  return finish(e);
}

std::optional<OrderLineRow> OrderLineRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  OrderLineRow r;
  r.i_id = d.get_u32();
  r.supply_w_id = d.get_u32();
  r.delivery_d = d.get_u64();
  r.quantity = d.get_u32();
  r.amount_cents = static_cast<std::int64_t>(d.get_u64());
  r.dist_info = d.get_string();
  if (!d.ok()) return std::nullopt;
  return r;
}

Value HistoryRow::encode() const {
  Encoder e;
  e.put_u32(c_id);
  e.put_u64(static_cast<std::uint64_t>(amount_cents));
  e.put_u64(date);
  e.put_string(data);
  return finish(e);
}

std::optional<HistoryRow> HistoryRow::decode(const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  HistoryRow r;
  r.c_id = d.get_u32();
  r.amount_cents = static_cast<std::int64_t>(d.get_u64());
  r.date = d.get_u64();
  r.data = d.get_string();
  if (!d.ok()) return std::nullopt;
  return r;
}

Value CustomerLastOrderRow::encode() const {
  Encoder e;
  e.put_u32(o_id);
  return finish(e);
}

std::optional<CustomerLastOrderRow> CustomerLastOrderRow::decode(
    const Value& v) {
  auto bytes = to_bytes(v);
  Decoder d(bytes);
  CustomerLastOrderRow r;
  r.o_id = d.get_u32();
  if (!d.ok()) return std::nullopt;
  return r;
}

NodeId TpccKeyMapper::node_for(Key key) const {
  if (table_of(key) == Table::kItem) {
    // Items belong to no warehouse; spread them evenly by hash.
    return static_cast<NodeId>(hash_key(key) % num_nodes_);
  }
  return warehouse_of(key) % num_nodes_;
}

}  // namespace fwkv::tpcc
