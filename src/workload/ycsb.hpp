// YCSB ported to the transactional key-value model, as configured in §5:
// two transaction profiles — update (reads and writes the same two keys,
// which makes the execution equivalent to a serializable one and stresses
// snapshot freshness) and read-only (reads two keys) — 4-byte keys, 12-byte
// values, uniform key selection, keys evenly distributed across nodes.
#pragma once

#include <cstdint>

#include "runtime/driver.hpp"

namespace fwkv::ycsb {

struct YcsbConfig {
  std::uint64_t total_keys = 50'000;
  /// Fraction of read-only transactions (the paper evaluates 0.2/0.5/0.8).
  double read_only_ratio = 0.2;
  std::uint32_t keys_per_tx = 2;
  std::size_t value_size = 12;
  /// 0 = uniform (the paper's setting); >0 enables Zipfian skew.
  double zipf_theta = 0.0;
  std::uint32_t max_retries = 1000;
};

class YcsbWorkload final : public runtime::Workload {
 public:
  explicit YcsbWorkload(YcsbConfig config);

  void load(Cluster& cluster) override;
  void execute_one(Session& session, Rng& rng,
                   runtime::ClientStats& stats) override;

  const YcsbConfig& config() const { return config_; }

  /// Key selection (exposed for distribution tests).
  Key pick_key(Rng& rng);

  static Value make_value(Rng& rng, std::size_t size);

 private:
  YcsbConfig config_;
  ZipfianGenerator zipf_;
};

}  // namespace fwkv::ycsb
