// Initial population of the TPC-C data set (spec clause 4.3, scaled).
#include "workload/tpcc.hpp"

namespace fwkv::tpcc {

TpccWorkload::TpccWorkload(TpccConfig config, std::uint32_t num_nodes)
    : config_(config),
      num_nodes_(num_nodes),
      total_warehouses_(config.warehouses_per_node * num_nodes) {}

std::shared_ptr<const KeyMapper> TpccWorkload::make_mapper(
    std::uint32_t num_nodes) {
  return std::make_shared<const TpccKeyMapper>(num_nodes);
}

void TpccWorkload::load(Cluster& cluster) {
  Rng rng(0x7ecc);

  // Items are shared by all warehouses.
  for (std::uint32_t i = 1; i <= config_.items; ++i) {
    ItemRow item;
    item.name = rng.next_astring(14, 24);
    item.price_cents = static_cast<std::int64_t>(rng.next_range(100, 10000));
    item.data = rng.next_astring(26, 50);
    cluster.load(item_key(i), item.encode());
  }

  for (std::uint32_t w = 0; w < total_warehouses_; ++w) {
    WarehouseRow wh;
    wh.name = rng.next_astring(6, 10);
    wh.street = rng.next_astring(10, 20);
    wh.city = rng.next_astring(10, 20);
    wh.state = rng.next_astring(2, 2);
    wh.zip = rng.next_nstring(9, 9);
    wh.tax_bp = static_cast<std::uint32_t>(rng.next_range(0, 2000));
    wh.ytd_cents = 30'000'000;  // spec: W_YTD = 300,000.00
    cluster.load(warehouse_key(w), wh.encode());

    for (std::uint32_t i = 1; i <= config_.items; ++i) {
      StockRow st;
      st.quantity = static_cast<std::int32_t>(rng.next_range(10, 100));
      st.dist_info = rng.next_astring(24, 24);
      cluster.load(stock_key(w, i), st.encode());
    }

    for (std::uint32_t d = 1; d <= config_.districts_per_warehouse; ++d) {
      DistrictRow dist;
      dist.name = rng.next_astring(6, 10);
      dist.street = rng.next_astring(10, 20);
      dist.city = rng.next_astring(10, 20);
      dist.tax_bp = static_cast<std::uint32_t>(rng.next_range(0, 2000));
      dist.ytd_cents = 3'000'000;
      dist.next_o_id = config_.initial_orders_per_district + 1;
      dist.next_delivery_o_id = 1;
      cluster.load(district_key(w, d), dist.encode());

      for (std::uint32_t c = 1; c <= config_.customers_per_district; ++c) {
        CustomerRow cust;
        cust.first = rng.next_astring(8, 16);
        cust.last = rng.next_astring(8, 16);
        cust.street = rng.next_astring(10, 20);
        cust.city = rng.next_astring(10, 20);
        cust.phone = rng.next_nstring(16, 16);
        cust.credit = rng.next_bool(0.1) ? "BC" : "GC";
        cust.discount_bp =
            static_cast<std::uint32_t>(rng.next_range(0, 5000));
        cust.credit_lim_cents = 5'000'000;
        cust.balance_cents = -1000;  // spec: C_BALANCE = -10.00
        cluster.load(customer_key(w, d, c), cust.encode());
        cluster.load(customer_last_order_key(w, d, c),
                     CustomerLastOrderRow{0}.encode());
      }

      // Seed a few undelivered orders so Delivery / OrderStatus /
      // StockLevel have material from the first transaction on.
      for (std::uint32_t o = 1; o <= config_.initial_orders_per_district;
           ++o) {
        const auto c_id = static_cast<std::uint32_t>(
            rng.next_range(1, config_.customers_per_district));
        OrderRow order;
        order.c_id = c_id;
        order.entry_d = o;
        order.carrier_id = 0;
        order.ol_cnt = static_cast<std::uint32_t>(
            rng.next_range(config_.min_lines, config_.max_lines));
        cluster.load(order_key(w, d, o), order.encode());
        cluster.load(new_order_key(w, d, o), NewOrderRow{true}.encode());
        cluster.load(customer_last_order_key(w, d, c_id),
                     CustomerLastOrderRow{o}.encode());
        for (std::uint32_t l = 1; l <= order.ol_cnt; ++l) {
          OrderLineRow ol;
          ol.i_id = pick_item(rng);
          ol.supply_w_id = w;
          ol.quantity = 5;
          ol.amount_cents =
              static_cast<std::int64_t>(rng.next_range(100, 999900));
          ol.dist_info = rng.next_astring(24, 24);
          cluster.load(order_line_key(w, d, o, l), ol.encode());
        }
      }
    }
  }
}

std::uint32_t TpccWorkload::pick_warehouse(Rng& rng) const {
  // §5: keys are selected uniformly — any client may pick any warehouse, so
  // accesses "might or might not be to the local data repository".
  return static_cast<std::uint32_t>(rng.next_below(total_warehouses_));
}

std::uint32_t TpccWorkload::pick_district(Rng& rng) const {
  return static_cast<std::uint32_t>(
      rng.next_range(1, config_.districts_per_warehouse));
}

std::uint32_t TpccWorkload::pick_customer(Rng& rng) const {
  // NURand over the scaled customer population.
  return static_cast<std::uint32_t>(
      rng.nurand(1023, 1, config_.customers_per_district));
}

std::uint32_t TpccWorkload::pick_item(Rng& rng) const {
  return static_cast<std::uint32_t>(rng.nurand(8191, 1, config_.items));
}

}  // namespace fwkv::tpcc
