#include "workload/ycsb.hpp"

#include <algorithm>

namespace fwkv::ycsb {

YcsbWorkload::YcsbWorkload(YcsbConfig config)
    : config_(config), zipf_(config.total_keys, config.zipf_theta) {}

Value YcsbWorkload::make_value(Rng& rng, std::size_t size) {
  return rng.next_astring(size, size);
}

void YcsbWorkload::load(Cluster& cluster) {
  Rng rng(0x5eed);
  for (Key k = 0; k < config_.total_keys; ++k) {
    cluster.load(k, make_value(rng, config_.value_size));
  }
}

Key YcsbWorkload::pick_key(Rng& rng) {
  if (config_.zipf_theta > 0.0) return zipf_.next(rng);
  return rng.next_below(config_.total_keys);
}

void YcsbWorkload::execute_one(Session& session, Rng& rng,
                               runtime::ClientStats& stats) {
  // Draw the logical transaction's parameters once; retries re-execute the
  // same transaction (closed-loop clients re-submit on abort).
  std::vector<Key> keys;
  keys.reserve(config_.keys_per_tx);
  while (keys.size() < config_.keys_per_tx) {
    Key k = pick_key(rng);
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(k);
    }
  }
  const bool read_only = rng.next_bool(config_.read_only_ratio);
  // Fresh payloads per logical transaction.
  std::vector<Value> new_values;
  if (!read_only) {
    for (std::uint32_t i = 0; i < config_.keys_per_tx; ++i) {
      new_values.push_back(make_value(rng, config_.value_size));
    }
  }

  runtime::run_with_retries(
      session, stats, read_only, config_.max_retries,
      [&](Session& s, Transaction& tx) {
        for (std::size_t i = 0; i < keys.size(); ++i) {
          auto v = s.read(tx, keys[i]);
          if (!v.has_value()) return false;  // key space is pre-loaded
          if (!read_only) s.write(tx, keys[i], new_values[i]);
        }
        return true;
      });
}

}  // namespace fwkv::ycsb
