// The five TPC-C transaction profiles.
#include "workload/tpcc.hpp"

#include <algorithm>

namespace fwkv::tpcc {
namespace {

/// Read-and-decode helper: nullopt if the key is missing or the row does
/// not parse (both abandon the transaction attempt; see the header comment
/// of execute_one for why missing keys are possible and benign).
template <typename Row>
std::optional<Row> fetch(Session& s, Transaction& tx, Key key) {
  auto raw = s.read(tx, key);
  if (!raw.has_value()) return std::nullopt;
  return Row::decode(*raw);
}

}  // namespace

Profile TpccWorkload::pick_profile(Rng& rng) const {
  const double r = rng.next_double();
  const double ro = config_.read_only_ratio;
  if (r < ro * 0.7) return Profile::kOrderStatus;
  if (r < ro) return Profile::kStockLevel;
  // Update share, split NewOrder:Payment:Delivery = 47:45:8.
  const double u = (r - ro) / (1.0 - ro);
  if (u < 0.47) return Profile::kNewOrder;
  if (u < 0.92) return Profile::kPayment;
  return Profile::kDelivery;
}

void TpccWorkload::execute_one(Session& session, Rng& rng,
                               runtime::ClientStats& stats) {
  // A profile body may return false ("abandon") when a row it expects is
  // not yet visible — e.g. a reader that catches a district's new order id
  // microseconds before the order's rows finish installing. Abandoned
  // transactions are not counted; they are rare (sub-0.1%) and the paper's
  // metrics are rates over counted attempts.
  switch (pick_profile(rng)) {
    case Profile::kNewOrder:
      run_new_order(session, rng, stats);
      break;
    case Profile::kPayment:
      run_payment(session, rng, stats);
      break;
    case Profile::kDelivery:
      run_delivery(session, rng, stats);
      break;
    case Profile::kOrderStatus:
      run_order_status(session, rng, stats);
      break;
    case Profile::kStockLevel:
      run_stock_level(session, rng, stats);
      break;
  }
}

bool TpccWorkload::run_new_order(Session& s, Rng& rng,
                                 runtime::ClientStats& stats) {
  const std::uint32_t w = pick_warehouse(rng);
  const std::uint32_t d = pick_district(rng);
  const std::uint32_t c = pick_customer(rng);
  const auto ol_cnt = static_cast<std::uint32_t>(
      rng.next_range(config_.min_lines, config_.max_lines));
  struct Line {
    std::uint32_t i_id;
    std::uint32_t supply_w;
    std::uint32_t qty;
  };
  std::vector<Line> lines(ol_cnt);
  bool all_local = true;
  for (auto& line : lines) {
    line.i_id = pick_item(rng);
    line.supply_w = w;
    if (total_warehouses_ > 1 && rng.next_bool(config_.remote_supply_prob)) {
      do {
        line.supply_w = pick_warehouse(rng);
      } while (line.supply_w == w);
      all_local = false;
    }
    line.qty = static_cast<std::uint32_t>(rng.next_range(1, 10));
  }
  const std::uint64_t entry_d = rng.next_u64();

  return runtime::run_with_retries(
      s, stats, /*read_only=*/false, config_.max_retries,
      [&](Session& session, Transaction& tx) {
        auto wh = fetch<WarehouseRow>(session, tx, warehouse_key(w));
        if (!wh) return false;

        auto dist = fetch<DistrictRow>(session, tx, district_key(w, d));
        if (!dist) return false;
        const std::uint32_t o_id = dist->next_o_id;
        dist->next_o_id = o_id + 1;
        session.write(tx, district_key(w, d), dist->encode());

        auto cust = fetch<CustomerRow>(session, tx, customer_key(w, d, c));
        if (!cust) return false;

        std::int64_t total_cents = 0;
        for (std::uint32_t l = 0; l < ol_cnt; ++l) {
          const Line& line = lines[l];
          auto item = fetch<ItemRow>(session, tx, item_key(line.i_id));
          if (!item) return false;
          auto stock =
              fetch<StockRow>(session, tx, stock_key(line.supply_w, line.i_id));
          if (!stock) return false;
          // Spec clause 2.4.2.2: restock when the shelf runs low.
          if (stock->quantity >= static_cast<std::int32_t>(line.qty) + 10) {
            stock->quantity -= static_cast<std::int32_t>(line.qty);
          } else {
            stock->quantity += 91 - static_cast<std::int32_t>(line.qty);
          }
          stock->ytd += line.qty;
          stock->order_cnt += 1;
          if (line.supply_w != w) stock->remote_cnt += 1;
          session.write(tx, stock_key(line.supply_w, line.i_id),
                        stock->encode());

          OrderLineRow ol;
          ol.i_id = line.i_id;
          ol.supply_w_id = line.supply_w;
          ol.quantity = line.qty;
          ol.amount_cents =
              static_cast<std::int64_t>(line.qty) * item->price_cents;
          ol.dist_info = stock->dist_info;
          session.write(tx, order_line_key(w, d, o_id, l + 1), ol.encode());
          total_cents += ol.amount_cents;
        }
        (void)total_cents;  // reported to the terminal in a real system

        OrderRow order;
        order.c_id = c;
        order.entry_d = entry_d;
        order.carrier_id = 0;
        order.ol_cnt = ol_cnt;
        order.all_local = all_local;
        session.write(tx, order_key(w, d, o_id), order.encode());
        session.write(tx, new_order_key(w, d, o_id),
                      NewOrderRow{true}.encode());
        session.write(tx, customer_last_order_key(w, d, c),
                      CustomerLastOrderRow{o_id}.encode());
        return true;
      });
}

bool TpccWorkload::run_payment(Session& s, Rng& rng,
                               runtime::ClientStats& stats) {
  const std::uint32_t w = pick_warehouse(rng);
  const std::uint32_t d = pick_district(rng);
  // Spec clause 2.5.1.2: 15% of payments are for a customer of a remote
  // warehouse.
  std::uint32_t cw = w;
  std::uint32_t cd = d;
  if (total_warehouses_ > 1 && rng.next_bool(config_.remote_payment_prob)) {
    do {
      cw = pick_warehouse(rng);
    } while (cw == w);
    cd = pick_district(rng);
  }
  const std::uint32_t c = pick_customer(rng);
  const auto amount =
      static_cast<std::int64_t>(rng.next_range(100, 500000));
  const auto h_a = static_cast<std::uint32_t>(rng.next_u64() & 0x3FFFFF);
  const auto h_b = static_cast<std::uint32_t>(rng.next_u64() & 0xFFFF);

  return runtime::run_with_retries(
      s, stats, /*read_only=*/false, config_.max_retries,
      [&](Session& session, Transaction& tx) {
        auto wh = fetch<WarehouseRow>(session, tx, warehouse_key(w));
        if (!wh) return false;
        wh->ytd_cents += amount;
        session.write(tx, warehouse_key(w), wh->encode());

        auto dist = fetch<DistrictRow>(session, tx, district_key(w, d));
        if (!dist) return false;
        dist->ytd_cents += amount;
        session.write(tx, district_key(w, d), dist->encode());

        auto cust = fetch<CustomerRow>(session, tx, customer_key(cw, cd, c));
        if (!cust) return false;
        cust->balance_cents -= amount;
        cust->ytd_payment_cents += amount;
        cust->payment_cnt += 1;
        session.write(tx, customer_key(cw, cd, c), cust->encode());

        HistoryRow hist;
        hist.c_id = c;
        hist.amount_cents = amount;
        hist.date = rng.next_u64();
        hist.data = wh->name + "    " + dist->name;
        session.write(tx, history_key(w, d, h_a, h_b), hist.encode());
        return true;
      });
}

bool TpccWorkload::run_delivery(Session& s, Rng& rng,
                                runtime::ClientStats& stats) {
  const std::uint32_t w = pick_warehouse(rng);
  const std::uint32_t d = pick_district(rng);
  const auto carrier = static_cast<std::uint32_t>(rng.next_range(1, 10));
  const std::uint64_t delivery_d = rng.next_u64();

  return runtime::run_with_retries(
      s, stats, /*read_only=*/false, config_.max_retries,
      [&](Session& session, Transaction& tx) {
        auto dist = fetch<DistrictRow>(session, tx, district_key(w, d));
        if (!dist) return false;
        if (dist->next_delivery_o_id >= dist->next_o_id) {
          // Nothing to deliver in this district right now; commit empty.
          return true;
        }
        const std::uint32_t o_id = dist->next_delivery_o_id;

        auto order = fetch<OrderRow>(session, tx, order_key(w, d, o_id));
        if (!order) return false;
        order->carrier_id = carrier;
        session.write(tx, order_key(w, d, o_id), order->encode());
        session.write(tx, new_order_key(w, d, o_id),
                      NewOrderRow{false}.encode());

        std::int64_t total_cents = 0;
        for (std::uint32_t l = 1; l <= order->ol_cnt; ++l) {
          auto ol =
              fetch<OrderLineRow>(session, tx, order_line_key(w, d, o_id, l));
          if (!ol) return false;
          total_cents += ol->amount_cents;
          ol->delivery_d = delivery_d;
          session.write(tx, order_line_key(w, d, o_id, l), ol->encode());
        }

        auto cust =
            fetch<CustomerRow>(session, tx, customer_key(w, d, order->c_id));
        if (!cust) return false;
        cust->balance_cents += total_cents;
        cust->delivery_cnt += 1;
        session.write(tx, customer_key(w, d, order->c_id), cust->encode());

        dist->next_delivery_o_id = o_id + 1;
        session.write(tx, district_key(w, d), dist->encode());
        return true;
      });
}

bool TpccWorkload::run_order_status(Session& s, Rng& rng,
                                    runtime::ClientStats& stats) {
  const std::uint32_t w = pick_warehouse(rng);
  const std::uint32_t d = pick_district(rng);
  const std::uint32_t c = pick_customer(rng);

  return runtime::run_with_retries(
      s, stats, /*read_only=*/true, config_.max_retries,
      [&](Session& session, Transaction& tx) {
        auto cust = fetch<CustomerRow>(session, tx, customer_key(w, d, c));
        if (!cust) return false;
        auto last = fetch<CustomerLastOrderRow>(
            session, tx, customer_last_order_key(w, d, c));
        if (!last) return false;
        if (last->o_id == 0) return true;  // never ordered
        auto order = fetch<OrderRow>(session, tx, order_key(w, d, last->o_id));
        if (!order) return false;
        for (std::uint32_t l = 1; l <= order->ol_cnt; ++l) {
          auto ol = fetch<OrderLineRow>(session, tx,
                                        order_line_key(w, d, last->o_id, l));
          if (!ol) return false;
        }
        return true;
      });
}

bool TpccWorkload::run_stock_level(Session& s, Rng& rng,
                                   runtime::ClientStats& stats) {
  const std::uint32_t w = pick_warehouse(rng);
  const std::uint32_t d = pick_district(rng);
  const auto threshold = static_cast<std::int32_t>(rng.next_range(10, 20));
  // Spec examines the last 20 orders; scaled to 5 to match the scaled
  // initial-order count.
  constexpr std::uint32_t kRecentOrders = 5;

  return runtime::run_with_retries(
      s, stats, /*read_only=*/true, config_.max_retries,
      [&](Session& session, Transaction& tx) {
        auto dist = fetch<DistrictRow>(session, tx, district_key(w, d));
        if (!dist) return false;
        const std::uint32_t hi = dist->next_o_id;  // exclusive
        const std::uint32_t lo = hi > kRecentOrders + 1 ? hi - kRecentOrders : 1;

        std::vector<std::uint32_t> items;
        for (std::uint32_t o = lo; o < hi; ++o) {
          auto order = fetch<OrderRow>(session, tx, order_key(w, d, o));
          if (!order) return false;
          for (std::uint32_t l = 1; l <= order->ol_cnt; ++l) {
            auto ol =
                fetch<OrderLineRow>(session, tx, order_line_key(w, d, o, l));
            if (!ol) return false;
            items.push_back(ol->i_id);
          }
        }
        std::sort(items.begin(), items.end());
        items.erase(std::unique(items.begin(), items.end()), items.end());

        std::uint32_t low_stock = 0;
        for (std::uint32_t i : items) {
          auto stock = fetch<StockRow>(session, tx, stock_key(w, i));
          if (!stock) return false;
          if (stock->quantity < threshold) ++low_stock;
        }
        (void)low_stock;
        return true;
      });
}

}  // namespace fwkv::tpcc
