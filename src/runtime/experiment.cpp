#include "runtime/experiment.hpp"

#include <cstdlib>
#include <memory>

namespace fwkv::runtime {

ExperimentScale ExperimentScale::from_env() {
  ExperimentScale scale;
  if (const char* ms = std::getenv("FWKV_BENCH_MS")) {
    const long v = std::strtol(ms, nullptr, 10);
    if (v > 0) scale.measure = std::chrono::milliseconds(v);
  }
  if (const char* clients = std::getenv("FWKV_BENCH_CLIENTS")) {
    const long v = std::strtol(clients, nullptr, 10);
    if (v > 0) scale.clients_per_node = static_cast<std::uint32_t>(v);
  }
  if (const char* lat = std::getenv("FWKV_BENCH_LAT_US")) {
    const long v = std::strtol(lat, nullptr, 10);
    if (v > 0) scale.one_way_latency = std::chrono::microseconds(v);
  }
  if (const char* trials = std::getenv("FWKV_BENCH_TRIALS")) {
    const long v = std::strtol(trials, nullptr, 10);
    if (v > 0) scale.trials = static_cast<std::uint32_t>(v);
  }
  return scale;
}

namespace {

DriverConfig driver_config(const ExperimentScale& scale) {
  DriverConfig cfg;
  cfg.clients_per_node = scale.clients_per_node;
  cfg.warmup = scale.warmup;
  cfg.measure = scale.measure;
  return cfg;
}

}  // namespace

namespace {

struct LoadedExperiment {
  std::unique_ptr<Cluster> cluster;
  std::unique_ptr<Workload> workload;
};

LoadedExperiment make_ycsb(const YcsbPoint& point,
                           const ExperimentScale& scale) {
  ClusterConfig cfg;
  cfg.num_nodes = point.num_nodes;
  cfg.protocol = point.protocol;
  cfg.net.one_way_latency = scale.one_way_latency;
  cfg.net.propagate_extra_delay = point.propagate_extra_delay;
  LoadedExperiment e;
  e.cluster = std::make_unique<Cluster>(cfg);

  ycsb::YcsbConfig ycfg;
  ycfg.total_keys = point.total_keys;
  ycfg.read_only_ratio = point.read_only_ratio;
  e.workload = std::make_unique<ycsb::YcsbWorkload>(ycfg);
  e.workload->load(*e.cluster);
  return e;
}

LoadedExperiment make_tpcc(const TpccPoint& point,
                           const ExperimentScale& scale) {
  ClusterConfig cfg;
  cfg.num_nodes = point.num_nodes;
  cfg.protocol = point.protocol;
  cfg.net.one_way_latency = scale.one_way_latency;
  cfg.net.propagate_extra_delay = point.propagate_extra_delay;
  cfg.mapper = tpcc::TpccWorkload::make_mapper(point.num_nodes);
  LoadedExperiment e;
  e.cluster = std::make_unique<Cluster>(cfg);

  tpcc::TpccConfig tcfg;
  tcfg.warehouses_per_node = point.warehouses_per_node;
  tcfg.read_only_ratio = point.read_only_ratio;
  tcfg.customers_per_district = point.customers_per_district;
  tcfg.items = point.items;
  e.workload =
      std::make_unique<tpcc::TpccWorkload>(tcfg, point.num_nodes);
  e.workload->load(*e.cluster);
  return e;
}

std::vector<RunResult> run_matrix(std::vector<LoadedExperiment> experiments,
                                  const ExperimentScale& scale) {
  std::vector<RunResult> results(experiments.size());
  for (std::uint32_t t = 0; t < scale.trials; ++t) {
    for (std::size_t i = 0; i < experiments.size(); ++i) {
      auto trial = run_driver(*experiments[i].cluster,
                              *experiments[i].workload,
                              driver_config(scale));
      if (t == 0) {
        results[i] = std::move(trial);
      } else {
        results[i].merge_trial(trial);
      }
    }
  }
  return results;
}

}  // namespace

std::vector<RunResult> run_ycsb_matrix(const std::vector<YcsbPoint>& points,
                                       const ExperimentScale& scale) {
  std::vector<LoadedExperiment> experiments;
  experiments.reserve(points.size());
  for (const auto& p : points) experiments.push_back(make_ycsb(p, scale));
  return run_matrix(std::move(experiments), scale);
}

std::vector<RunResult> run_tpcc_matrix(const std::vector<TpccPoint>& points,
                                       const ExperimentScale& scale) {
  std::vector<LoadedExperiment> experiments;
  experiments.reserve(points.size());
  for (const auto& p : points) experiments.push_back(make_tpcc(p, scale));
  return run_matrix(std::move(experiments), scale);
}

RunResult run_ycsb_point(const YcsbPoint& point,
                         const ExperimentScale& scale) {
  return run_ycsb_matrix({point}, scale).front();
}

RunResult run_tpcc_point(const TpccPoint& point,
                         const ExperimentScale& scale) {
  return run_tpcc_matrix({point}, scale).front();
}

}  // namespace fwkv::runtime
