// One-call experiment points for the paper's figures: build a cluster for a
// (protocol, size, workload) configuration, load it, drive it, and return
// the measured RunResult. The bench binaries sweep these.
#pragma once

#include <chrono>

#include "runtime/driver.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

namespace fwkv::runtime {

struct ExperimentScale {
  /// Measurement window per point. The paper averages 5 trials of long
  /// runs; the default here keeps a full figure sweep under a couple of
  /// minutes. Override with the FWKV_BENCH_MS environment variable.
  std::chrono::milliseconds measure{600};
  std::chrono::milliseconds warmup{150};
  std::uint32_t clients_per_node = 5;
  /// One-way message latency. The paper's testbed delivers in ~20 us with
  /// 28 cores per node; this simulator shares a couple of host cores among
  /// all nodes, so the default is higher to keep the experiments in the
  /// latency-bound regime the paper ran in (protocol message counts and
  /// waits dominate, not simulator CPU). Override via FWKV_BENCH_LAT_US.
  std::chrono::nanoseconds one_way_latency{std::chrono::microseconds(200)};
  /// Measurement repetitions per point, pooled into one result (the paper
  /// averages 5 trials). Override via FWKV_BENCH_TRIALS.
  std::uint32_t trials = 3;

  /// Reads FWKV_BENCH_MS / FWKV_BENCH_CLIENTS / FWKV_BENCH_LAT_US /
  /// FWKV_BENCH_TRIALS if set.
  static ExperimentScale from_env();
};

struct YcsbPoint {
  Protocol protocol = Protocol::kFwKv;
  std::uint32_t num_nodes = 5;
  std::uint64_t total_keys = 50'000;
  double read_only_ratio = 0.2;
  std::chrono::nanoseconds propagate_extra_delay{0};
};

struct TpccPoint {
  Protocol protocol = Protocol::kFwKv;
  std::uint32_t num_nodes = 5;
  std::uint32_t warehouses_per_node = 16;
  double read_only_ratio = 0.2;
  std::chrono::nanoseconds propagate_extra_delay{0};
  /// Scaled-population knobs (kept modest so sweeps load quickly).
  std::uint32_t customers_per_district = 40;
  std::uint32_t items = 500;
};

RunResult run_ycsb_point(const YcsbPoint& point, const ExperimentScale& scale);
RunResult run_tpcc_point(const TpccPoint& point, const ExperimentScale& scale);

/// Run several points (e.g. the same configuration under each protocol)
/// with interleaved trials: trial t of every point completes before trial
/// t+1 of any point starts. Slow drift in host capacity (noisy-neighbour
/// CPU steal) then affects all points equally, which keeps the
/// protocol-relative ratios — what the figures actually compare — honest.
std::vector<RunResult> run_ycsb_matrix(const std::vector<YcsbPoint>& points,
                                       const ExperimentScale& scale);
std::vector<RunResult> run_tpcc_matrix(const std::vector<TpccPoint>& points,
                                       const ExperimentScale& scale);

}  // namespace fwkv::runtime
