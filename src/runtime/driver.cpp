#include "runtime/driver.hpp"

#include <atomic>
#include <thread>
#include <vector>

namespace fwkv::runtime {

RunResult run_driver(Cluster& cluster, Workload& workload,
                     const DriverConfig& config) {
  const std::uint32_t nodes = cluster.num_nodes();
  const std::uint32_t total_clients = nodes * config.clients_per_node;

  // Phases: 0 = warmup, 1 = measuring, 2 = stop.
  std::atomic<int> phase{0};
  std::vector<ClientStats> per_client(total_clients);
  std::vector<std::thread> threads;
  threads.reserve(total_clients);

  for (std::uint32_t n = 0; n < nodes; ++n) {
    for (std::uint32_t c = 0; c < config.clients_per_node; ++c) {
      const std::uint32_t idx = n * config.clients_per_node + c;
      threads.emplace_back([&, n, c, idx] {
        Session session = cluster.make_session(n, c);
        Rng rng(config.base_seed * 0x9e3779b9u + idx * 7919u + 1);
        ClientStats warmup_sink;
        while (phase.load(std::memory_order_acquire) != 2) {
          ClientStats& sink =
              phase.load(std::memory_order_acquire) == 1 ? per_client[idx]
                                                         : warmup_sink;
          workload.execute_one(session, rng, sink);
        }
      });
    }
  }

  std::this_thread::sleep_for(config.warmup);
  cluster.reset_stats();
  const auto t0 = std::chrono::steady_clock::now();
  phase.store(1, std::memory_order_release);
  std::this_thread::sleep_for(config.measure);
  phase.store(2, std::memory_order_release);
  const auto t1 = std::chrono::steady_clock::now();
  for (auto& t : threads) t.join();

  RunResult result;
  result.protocol = cluster.protocol();
  result.seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(t1 - t0)
          .count();
  for (const auto& cs : per_client) result.clients.merge(cs);
  result.nodes = cluster.aggregate_stats();
  return result;
}

}  // namespace fwkv::runtime
