#include "runtime/longfork.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>
#include <vector>

#include "core/cluster.hpp"
#include "core/session.hpp"

namespace fwkv::runtime {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kMaxUpdates = 1 << 20;

/// Commit log of one updater: commit_time[v] is when the commit of value v
/// returned to the client (so "committed before T starts" is well defined
/// at the client level, as in the §3.3 social-network story).
struct CommitLog {
  std::vector<std::atomic<std::int64_t>> times;
  std::atomic<std::uint64_t> last{0};

  CommitLog() : times(kMaxUpdates) {}

  void record(std::uint64_t value, std::int64_t t_ns) {
    if (value < kMaxUpdates) {
      times[value].store(t_ns, std::memory_order_release);
      last.store(value, std::memory_order_release);
    }
  }

  /// Largest value whose commit completed at or before `t_ns`.
  std::uint64_t settled_at(std::int64_t t_ns) const {
    std::uint64_t v = last.load(std::memory_order_acquire);
    while (v > 0 && times[v].load(std::memory_order_acquire) > t_ns) --v;
    return v;
  }
};

struct Snapshot {
  std::uint64_t x;
  std::uint64_t y;
  bool stale;  // missed a committed-before-start version on some stream
};

/// Count pairs (i, j) with x_i < x_j and y_i > y_j — opposite-order
/// observations — via merge-sort inversion counting in O(n log n).
std::uint64_t count_opposite_pairs(std::vector<Snapshot> snaps) {
  std::sort(snaps.begin(), snaps.end(), [](const Snapshot& a,
                                           const Snapshot& b) {
    return a.x != b.x ? a.x < b.x : a.y < b.y;
  });
  // After sorting by (x asc, y asc), pairs with equal x contribute no
  // strict inversion (their y is ascending), so counting strict y
  // inversions counts exactly the opposite-order pairs.
  std::vector<std::uint64_t> ys(snaps.size());
  for (std::size_t i = 0; i < snaps.size(); ++i) ys[i] = snaps[i].y;

  std::uint64_t inversions = 0;
  std::vector<std::uint64_t> tmp(ys.size());
  // Bottom-up merge sort counting strict inversions.
  for (std::size_t width = 1; width < ys.size(); width *= 2) {
    for (std::size_t lo = 0; lo + width < ys.size(); lo += 2 * width) {
      const std::size_t mid = lo + width;
      const std::size_t hi = std::min(lo + 2 * width, ys.size());
      std::size_t i = lo;
      std::size_t j = mid;
      std::size_t k = lo;
      while (i < mid && j < hi) {
        if (ys[i] <= ys[j]) {
          tmp[k++] = ys[i++];
        } else {
          inversions += mid - i;  // ys[i..mid) all strictly greater
          tmp[k++] = ys[j++];
        }
      }
      while (i < mid) tmp[k++] = ys[i++];
      while (j < hi) tmp[k++] = ys[j++];
      std::copy(tmp.begin() + static_cast<std::ptrdiff_t>(lo),
                tmp.begin() + static_cast<std::ptrdiff_t>(hi),
                ys.begin() + static_cast<std::ptrdiff_t>(lo));
    }
  }
  return inversions;
}

std::uint64_t parse_counter(const Value& v) {
  return v.empty() ? 0 : std::strtoull(v.c_str(), nullptr, 10);
}

}  // namespace

LongForkResult run_long_fork_probe(const LongForkProbeConfig& config) {
  assert(config.num_nodes >= 4);
  ClusterConfig cfg;
  cfg.num_nodes = config.num_nodes;
  cfg.protocol = config.protocol;
  cfg.net.one_way_latency = config.one_way_latency;
  cfg.net.propagate_extra_delay = config.propagate_extra_delay;
  Cluster cluster(cfg);

  // Pick two counter keys with distinct preferred nodes.
  Key key_x = 0;
  while (true) {
    ++key_x;
    if (cluster.node_for_key(key_x) != 0) continue;
    break;
  }
  Key key_y = key_x;
  while (true) {
    ++key_y;
    if (cluster.node_for_key(key_y) != 1) continue;
    break;
  }
  cluster.load(key_x, "0");
  cluster.load(key_y, "0");

  CommitLog log_x;
  CommitLog log_y;
  const auto epoch = Clock::now();
  auto now_ns = [&]() -> std::int64_t {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                epoch)
        .count();
  };

  std::atomic<bool> stop{false};
  LongForkResult result;

  // Updaters live on their key's preferred node: their commits are local
  // (fast path), and only the asynchronous Propagate carries them to the
  // readers' nodes — the exact Fig. 1 regime.
  auto updater = [&](Key key, CommitLog& log, NodeId node) {
    Session session = cluster.make_session(node, /*client=*/50);
    std::uint64_t value = 1;
    while (!stop.load(std::memory_order_acquire)) {
      Transaction tx = session.begin(false);
      session.write(tx, key, std::to_string(value));
      if (session.commit(tx)) {
        log.record(value, now_ns());
        ++value;
      }
    }
  };

  std::vector<Snapshot> all_snapshots;
  std::mutex snapshots_mu;
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> stale_first{0};

  auto reader = [&](NodeId node, std::uint32_t client, bool x_first) {
    Session session = cluster.make_session(node, client);
    std::vector<Snapshot> local;
    while (!stop.load(std::memory_order_acquire)) {
      const std::int64_t t0 = now_ns();
      const std::uint64_t settled_x = log_x.settled_at(t0);
      const std::uint64_t settled_y = log_y.settled_at(t0);
      Transaction tx = session.begin(true);
      Key first = x_first ? key_x : key_y;
      Key second = x_first ? key_y : key_x;
      auto v1 = session.read(tx, first);
      auto v2 = session.read(tx, second);
      session.commit(tx);
      if (!v1 || !v2) continue;
      const std::uint64_t vx = parse_counter(x_first ? *v1 : *v2);
      const std::uint64_t vy = parse_counter(x_first ? *v2 : *v1);
      reads.fetch_add(2, std::memory_order_relaxed);
      // Both reads are first contacts with their nodes (the reader's node
      // differs from both preferred nodes), so §2.4 promises the latest
      // committed-before-start version from each.
      if (vx < settled_x) stale_first.fetch_add(1, std::memory_order_relaxed);
      if (vy < settled_y) stale_first.fetch_add(1, std::memory_order_relaxed);
      local.push_back(Snapshot{vx, vy, vx < settled_x || vy < settled_y});
    }
    std::lock_guard<std::mutex> lock(snapshots_mu);
    all_snapshots.insert(all_snapshots.end(), local.begin(), local.end());
  };

  std::vector<std::thread> threads;
  threads.emplace_back(updater, key_x, std::ref(log_x), NodeId{0});
  threads.emplace_back(updater, key_y, std::ref(log_y), NodeId{1});
  for (std::uint32_t r = 0; r < config.readers; ++r) {
    const NodeId node = 2 + (r % (config.num_nodes - 2));
    threads.emplace_back(reader, node, 100 + r, r % 2 == 0);
  }

  std::this_thread::sleep_for(config.duration);
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();

  result.snapshots = all_snapshots.size();
  result.reads = reads.load();
  result.stale_first_reads = stale_first.load();
  result.updates_committed = log_x.last.load() + log_y.last.load();
  result.long_fork_pairs = count_opposite_pairs(all_snapshots);
  std::vector<Snapshot> stale;
  for (const auto& s : all_snapshots) {
    if (s.stale) stale.push_back(s);
  }
  result.stale_long_fork_pairs = count_opposite_pairs(std::move(stale));
  return result;
}

}  // namespace fwkv::runtime
