#include "runtime/metrics.hpp"

#include <sstream>

namespace fwkv::runtime {

std::string RunResult::summary() const {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(1);
  os << protocol_name(protocol) << ": " << throughput_tps() / 1000.0
     << " kTx/s, abort-rate " << abort_rate() * 100.0 << "%, "
     << clients.commits() << " commits (" << clients.ro_commits << " ro / "
     << clients.update_commits << " upd), mean-latency "
     << mean_latency_us() << " us";
  if (nodes.collected_count > 0) {
    os << ", mean-antidep " << mean_collected_set();
  }
  return os.str();
}

}  // namespace fwkv::runtime
