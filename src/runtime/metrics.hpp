// Run-level metrics: what the paper's plots are made of. Per-client-thread
// counters (no sharing during the run) merged into a RunResult at the end.
#pragma once

#include <cstdint>
#include <string>

#include "common/histogram.hpp"
#include "core/node_stats.hpp"
#include "core/protocol.hpp"

namespace fwkv::runtime {

/// Counters owned by one closed-loop client thread.
struct ClientStats {
  std::uint64_t ro_commits = 0;
  std::uint64_t update_commits = 0;
  std::uint64_t aborts_lock = 0;
  std::uint64_t aborts_validation = 0;
  std::uint64_t aborts_vote_timeout = 0;

  std::uint64_t reads = 0;
  std::uint64_t stale_reads = 0;
  std::uint64_t freshness_gap_sum = 0;

  std::uint64_t latency_ns_sum = 0;
  std::uint64_t latency_samples = 0;

  void merge(const ClientStats& o) {
    ro_commits += o.ro_commits;
    update_commits += o.update_commits;
    aborts_lock += o.aborts_lock;
    aborts_validation += o.aborts_validation;
    aborts_vote_timeout += o.aborts_vote_timeout;
    reads += o.reads;
    stale_reads += o.stale_reads;
    freshness_gap_sum += o.freshness_gap_sum;
    latency_ns_sum += o.latency_ns_sum;
    latency_samples += o.latency_samples;
  }

  std::uint64_t commits() const { return ro_commits + update_commits; }
  std::uint64_t aborts() const {
    return aborts_lock + aborts_validation + aborts_vote_timeout;
  }
};

/// Everything measured over one experiment point.
struct RunResult {
  Protocol protocol = Protocol::kFwKv;
  double seconds = 0.0;
  ClientStats clients;          // merged over all client threads
  NodeStats::Snapshot nodes;    // merged over all nodes

  double throughput_tps() const {
    return seconds <= 0.0 ? 0.0
                          : static_cast<double>(clients.commits()) / seconds;
  }
  /// Abort rate over update-transaction attempts (Figs. 7, 9a).
  double abort_rate() const {
    const std::uint64_t attempts =
        clients.update_commits + clients.aborts();
    return attempts == 0 ? 0.0
                         : static_cast<double>(clients.aborts()) /
                               static_cast<double>(attempts);
  }
  /// Fraction of reads that returned a non-latest version (Ext. A).
  double stale_read_fraction() const {
    return clients.reads == 0 ? 0.0
                              : static_cast<double>(clients.stale_reads) /
                                    static_cast<double>(clients.reads);
  }
  /// Mean staleness gap in versions over all reads (Ext. A).
  double mean_freshness_gap() const {
    return clients.reads == 0
               ? 0.0
               : static_cast<double>(clients.freshness_gap_sum) /
                     static_cast<double>(clients.reads);
  }
  double mean_latency_us() const {
    return clients.latency_samples == 0
               ? 0.0
               : static_cast<double>(clients.latency_ns_sum) /
                     static_cast<double>(clients.latency_samples) / 1000.0;
  }
  /// Fig. 6: mean anti-dependency set collected at prepare.
  double mean_collected_set() const { return nodes.mean_collected_set(); }

  /// Pool another trial of the same experiment point (throughput and rates
  /// become the multi-trial average, as the paper reports 5-trial means).
  void merge_trial(const RunResult& other) {
    seconds += other.seconds;
    clients.merge(other.clients);
    nodes.merge(other.nodes);
  }

  std::string summary() const;
};

}  // namespace fwkv::runtime
