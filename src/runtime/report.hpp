// Plain-text table printer for the benchmark harnesses: each bench binary
// prints the same rows/series the paper's figures plot.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/node_stats.hpp"

namespace fwkv {
namespace net {
class SimNetwork;
}

namespace runtime {

class Table {
 public:
  Table(std::string title, std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  static std::string fmt(double v, int precision = 1);
  static std::string fmt_pct(double fraction, int precision = 1);

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fault-recovery activity of a run: the chaos counters aggregated across
/// nodes plus the network's injected-fault totals. All-zero rows are the
/// expected picture on a reliable network.
Table fault_recovery_table(const NodeStats::Snapshot& merged,
                           const net::SimNetwork& network);

}  // namespace runtime
}  // namespace fwkv
