#include "runtime/report.hpp"

#include <algorithm>

#include "net/network.hpp"
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fwkv::runtime {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
         << cells[i];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

Table fault_recovery_table(const NodeStats::Snapshot& merged,
                           const net::SimNetwork& network) {
  Table t("fault recovery", {"counter", "count"});
  auto row = [&](const char* name, std::uint64_t v) {
    t.add_row({name, std::to_string(v)});
  };
  row("net.drops", network.faults_injected(net::FaultKind::kDrop));
  row("net.partition_drops",
      network.faults_injected(net::FaultKind::kPartitionDrop));
  row("net.duplicates", network.faults_injected(net::FaultKind::kDuplicate));
  row("net.reorders", network.faults_injected(net::FaultKind::kReorder));
  row("net.pause_deferrals",
      network.faults_injected(net::FaultKind::kPauseDeferral));
  row("node.prepare_retries", merged.prepare_retries);
  row("node.decide_retries", merged.decide_retries);
  row("node.dup_drops", merged.dup_drops);
  row("node.gap_requests", merged.gap_requests);
  row("node.gap_resends", merged.gap_resends);
  row("node.resend_misses", merged.resend_misses);
  row("node.timeout_aborts", merged.aborts_vote_timeout);
  return t;
}

}  // namespace fwkv::runtime
