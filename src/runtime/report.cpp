#include "runtime/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace fwkv::runtime {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  os << "== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
         << cells[i];
    }
    os << '\n';
  };
  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
  os << '\n';
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

}  // namespace fwkv::runtime
