// Long-fork / freshness probe (Ext. B): instruments the exact scenario of
// the paper's Fig. 1. Two updaters each increment one counter key whose
// preferred nodes differ; read-only transactions on other nodes read both
// counters. We measure:
//
//   * committed-before-start misses — a read-only transaction's *first*
//     contact with a node returns a version older than the newest version
//     whose commit completed before the transaction began. FW-KV
//     guarantees zero such misses (§2.4); Walter produces them whenever
//     Propagate lags.
//   * long-fork pairs — pairs of read-only snapshots that observe the two
//     updaters in opposite orders (the Fig. 1 anomaly). For updates that
//     committed before both readers began, FW-KV eliminates these (§3.3).
#pragma once

#include <chrono>
#include <cstdint>

#include "core/protocol.hpp"

namespace fwkv::runtime {

struct LongForkResult {
  std::uint64_t snapshots = 0;
  std::uint64_t reads = 0;
  /// First-contact reads that missed a committed-before-start version.
  std::uint64_t stale_first_reads = 0;
  /// Snapshot pairs observing the two update streams in opposite orders.
  std::uint64_t long_fork_pairs = 0;
  /// Same, restricted to snapshots that missed a committed-before-start
  /// update on one stream while observing the other — the participants of
  /// the client-visible Fig. 1 anomaly (§3.3). Zero for FW-KV because its
  /// first-contact reads are never stale.
  std::uint64_t stale_long_fork_pairs = 0;
  std::uint64_t updates_committed = 0;

  double stale_first_read_rate() const {
    return reads == 0 ? 0.0
                      : static_cast<double>(stale_first_reads) /
                            static_cast<double>(reads);
  }
};

struct LongForkProbeConfig {
  Protocol protocol = Protocol::kFwKv;
  std::uint32_t num_nodes = 4;
  std::chrono::milliseconds duration{500};
  std::chrono::nanoseconds one_way_latency{std::chrono::microseconds(20)};
  std::chrono::nanoseconds propagate_extra_delay{std::chrono::milliseconds(1)};
  std::uint32_t readers = 4;
};

LongForkResult run_long_fork_probe(const LongForkProbeConfig& config);

}  // namespace fwkv::runtime
