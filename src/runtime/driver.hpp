// Closed-loop workload driver (§5: "five application threads (i.e. clients)
// per node injecting transactions in a closed-loop").
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/session.hpp"
#include "runtime/metrics.hpp"

namespace fwkv::runtime {

/// A benchmark workload: loads the data set and executes logical
/// transactions. One Workload instance serves all client threads, so
/// execute_one must be thread-safe w.r.t. its own state (the provided
/// Session/Rng/ClientStats are per-thread).
class Workload {
 public:
  virtual ~Workload() = default;

  virtual void load(Cluster& cluster) = 0;

  /// Run one logical transaction to completion: generate its parameters,
  /// execute, and retry the same logical transaction on abort until it
  /// commits (or the retry cap is hit). Every attempt's outcome must be
  /// recorded in `stats`.
  virtual void execute_one(Session& session, Rng& rng, ClientStats& stats) = 0;
};

struct DriverConfig {
  std::uint32_t clients_per_node = 5;
  std::chrono::milliseconds warmup{150};
  std::chrono::milliseconds measure{1000};
  std::uint64_t base_seed = 0xC0FFEE;
  /// Give up retrying a logical transaction after this many aborts
  /// (prevents livelock under pathological contention; attempts are still
  /// counted so the abort rate is unaffected).
  std::uint32_t max_retries = 1000;
};

/// Helper for Workload implementations: the standard retry loop. Returns
/// true if the transaction finally committed.
template <typename Body>
bool run_with_retries(Session& session, ClientStats& stats, bool read_only,
                      std::uint32_t max_retries, Body&& body) {
  for (std::uint32_t attempt = 0; attempt <= max_retries; ++attempt) {
    const auto start = std::chrono::steady_clock::now();
    Transaction tx = session.begin(read_only);
    if (!body(session, tx)) {
      // Workload decided to abandon (e.g. a read of a missing key).
      session.abort(tx);
      return false;
    }
    const bool ok = session.commit(tx);
    stats.reads += tx.reads_issued();
    stats.stale_reads += tx.stale_reads();
    stats.freshness_gap_sum += tx.freshness_gap_sum();
    if (ok) {
      const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      stats.latency_ns_sum += static_cast<std::uint64_t>(ns);
      ++stats.latency_samples;
      if (read_only) {
        ++stats.ro_commits;
      } else {
        ++stats.update_commits;
      }
      return true;
    }
    switch (tx.abort_reason()) {
      case AbortReason::kLockTimeout:
        ++stats.aborts_lock;
        break;
      case AbortReason::kValidation:
        ++stats.aborts_validation;
        break;
      default:
        ++stats.aborts_vote_timeout;
        break;
    }
  }
  return false;
}

/// Run `workload` against `cluster` with closed-loop clients and return the
/// measured-window metrics. The cluster must already be loaded.
RunResult run_driver(Cluster& cluster, Workload& workload,
                     const DriverConfig& config);

}  // namespace fwkv::runtime
