// Single-version store for the 2PC-baseline comparator (§5: "a serializable
// key-value store where all transactions execute optimistically and rely on
// the Two-Phase Commit protocol to commit ... thus without needing
// multiversioning").
#pragma once

#include <memory>
#include <optional>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace fwkv::store {

class SVStore {
 public:
  struct Item {
    Value value;
    /// Bumped on every install; reads record it, prepare validates it.
    VersionId version = 0;
  };

  explicit SVStore(std::size_t shards = 64);

  void load(Key key, Value value);

  /// Optimistic read: current value + version, or nullopt if absent.
  std::optional<Item> read(Key key) const;

  /// True iff the key's current version equals `expected` (absent keys
  /// validate against version 0).
  bool validate(Key key, VersionId expected) const;

  /// Overwrite (or create) the key, bumping its version.
  void install(Key key, Value value);

  std::size_t key_count() const;

 private:
  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<Key, Item> map;
  };
  Shard& shard_for(Key key);
  const Shard& shard_for(Key key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fwkv::store
