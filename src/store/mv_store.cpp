#include "store/mv_store.hpp"

#include <cassert>

#include "common/consistent_hash.hpp"

namespace fwkv::store {

MVStore::MVStore(std::size_t shards) {
  assert(shards > 0);
  map_shards_.reserve(shards);
  index_shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    map_shards_.push_back(std::make_unique<MapShard>());
    index_shards_.push_back(std::make_unique<IndexShard>());
  }
}

MVStore::Entry* MVStore::find_entry(Key key) const {
  const auto& shard = *map_shards_[hash_key(key) % map_shards_.size()];
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  return it == shard.map.end() ? nullptr : it->second.get();
}

MVStore::Entry& MVStore::get_or_create_entry(Key key) {
  auto& shard = *map_shards_[hash_key(key) % map_shards_.size()];
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto& slot = shard.map[key];
  if (!slot) slot = std::make_unique<Entry>();
  return *slot;
}

void MVStore::load(Key key, Value value, std::size_t cluster_size) {
  Entry& e = get_or_create_entry(key);
  std::lock_guard<std::mutex> latch(e.latch);
  e.chain.install(std::move(value), VectorClock(cluster_size), /*origin=*/0,
                  /*seq=*/0);
}

bool MVStore::contains(Key key) const { return find_entry(key) != nullptr; }

std::size_t MVStore::key_count() const {
  std::size_t n = 0;
  for (const auto& shard : map_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    n += shard->map.size();
  }
  return n;
}

ReadResult MVStore::read_read_only(Key key, const VectorClock& tvc,
                                   const std::vector<bool>& has_read,
                                   TxId reader) {
  Entry* e = find_entry(key);
  if (e == nullptr) return {};
  ReadResult r;
  {
    std::lock_guard<std::mutex> latch(e->latch);
    r = e->chain.select_read_only(tvc, has_read, reader);
  }
  // select_read_only inserts the reader id unless it was already present
  // (re-read fallback); registering twice is harmless because remove_tx
  // tolerates duplicate refs. Registration happens after the latch is
  // released (lock-order rule: never hold a latch and an index shard).
  if (r.found) register_reader(reader, e, r.id);
  return r;
}

ReadResult MVStore::read_update(Key key, const VectorClock& tvc,
                                const std::vector<bool>& has_read,
                                bool snapshot_fixed) const {
  Entry* e = find_entry(key);
  if (e == nullptr) return {};
  std::lock_guard<std::mutex> latch(e->latch);
  return e->chain.select_update(tvc, has_read, snapshot_fixed);
}

ReadResult MVStore::read_walter(Key key, const VectorClock& tvc) const {
  Entry* e = find_entry(key);
  if (e == nullptr) return {};
  std::lock_guard<std::mutex> latch(e->latch);
  return e->chain.select_walter(tvc);
}

bool MVStore::validate_key(Key key, const VectorClock& tvc) const {
  Entry* e = find_entry(key);
  if (e == nullptr) return true;  // blind insert of a fresh key
  std::lock_guard<std::mutex> latch(e->latch);
  return e->chain.validate(tvc);
}

bool MVStore::validate_key_version(Key key, VersionId observed) const {
  Entry* e = find_entry(key);
  if (e == nullptr) return observed == 0;
  std::lock_guard<std::mutex> latch(e->latch);
  return !e->chain.empty() && e->chain.latest().id == observed;
}

void MVStore::collect_access_sets(std::span<const Key> keys,
                                  std::vector<TxId>& out) const {
  for (Key k : keys) {
    Entry* e = find_entry(k);
    if (e == nullptr) continue;
    std::lock_guard<std::mutex> latch(e->latch);
    e->chain.collect_access_sets(out);
  }
}

void MVStore::install(Key key, Value value, const VectorClock& commit_vc,
                      NodeId origin, SeqNo seq,
                      std::span<const TxId> collected) {
  Entry& e = get_or_create_entry(key);
  std::vector<TxId> stamped;
  VersionId vid = 0;
  {
    std::lock_guard<std::mutex> latch(e.latch);
    Version& v = e.chain.install(std::move(value), commit_vc, origin, seq);
    vid = v.id;
    for (TxId id : collected) {
      if (recently_removed(id)) continue;  // the RO tx already finished
      if (v.access_set_insert(id)) stamped.push_back(id);
    }
  }
  // Registrations happen after the latch is released (lock-order rule).
  for (TxId id : stamped) register_reader(id, &e, vid);
}

void MVStore::register_reader(TxId tx, Entry* entry, VersionId version_id) {
  auto& shard = *index_shards_[std::hash<TxId>{}(tx) % index_shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map[tx].push_back(IndexRef{entry, version_id});
}

void MVStore::remove_tx(TxId tx) {
  note_removed(tx);
  std::vector<IndexRef> refs;
  {
    auto& shard = *index_shards_[std::hash<TxId>{}(tx) % index_shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(tx);
    if (it == shard.map.end()) return;
    refs = std::move(it->second);
    shard.map.erase(it);
  }
  for (const IndexRef& ref : refs) {
    std::lock_guard<std::mutex> latch(ref.entry->latch);
    for (auto& v : ref.entry->chain.versions()) {
      if (v.id == ref.version_id) {
        v.access_set_erase(tx);
        break;
      }
    }
  }
}

std::size_t MVStore::access_set_footprint() const {
  std::size_t n = 0;
  for (const auto& shard : map_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      std::lock_guard<std::mutex> latch(entry->latch);
      for (const auto& v : entry->chain.versions()) n += v.access_set.size();
    }
  }
  return n;
}

bool MVStore::recently_removed(TxId tx) const {
  std::lock_guard<std::mutex> lock(removed_mu_);
  return removed_set_.count(tx) > 0;
}

void MVStore::note_removed(TxId tx) {
  std::lock_guard<std::mutex> lock(removed_mu_);
  if (removed_set_.insert(tx).second) {
    removed_ring_.push_back(tx);
    if (removed_ring_.size() > kRemovedRing) {
      removed_set_.erase(removed_ring_.front());
      removed_ring_.pop_front();
    }
  }
}

}  // namespace fwkv::store
