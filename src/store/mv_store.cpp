#include "store/mv_store.hpp"

#include <algorithm>
#include <cassert>

#include "common/consistent_hash.hpp"

namespace fwkv::store {

namespace {

// ---------------------------------------------------------------------------
// Per-thread resolved-Entry cache.
//
// Entries are created on demand and never destroyed while their store lives
// (shard maps only ever insert), so an Entry* resolved once stays valid for
// the store's lifetime. Each executor thread keeps a small direct-mapped
// cache of (store, key) -> Entry*; repeated touches of a hot key skip the
// shard shared_mutex entirely. Slots are tagged with a store id drawn from a
// process-global counter, so a slot left over from a destroyed store can
// never satisfy a lookup against a new one (even at the same address).
// ---------------------------------------------------------------------------

struct EntryCacheSlot {
  std::uint64_t store_id = 0;
  Key key = 0;
  void* entry = nullptr;
};

constexpr std::size_t kEntryCacheSlots = 256;  // power of two
thread_local EntryCacheSlot t_entry_cache[kEntryCacheSlots];

std::atomic<std::uint64_t> g_next_store_id{1};

std::size_t cache_slot(std::uint64_t store_id, std::uint64_t key_hash) {
  return (key_hash ^ (store_id * 0x9E3779B97F4A7C15ull)) &
         (kEntryCacheSlots - 1);
}

}  // namespace

MVStore::MVStore(std::size_t shards, std::size_t removed_capacity)
    : store_id_(g_next_store_id.fetch_add(1, std::memory_order_relaxed)),
      removed_stripe_cap_(std::max<std::size_t>(
          1, removed_capacity / kRemovedStripes)) {
  assert(shards > 0);
  map_shards_.reserve(shards);
  index_shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    map_shards_.push_back(std::make_unique<MapShard>());
    index_shards_.push_back(std::make_unique<IndexShard>());
  }
}

MVStore::~MVStore() = default;

MVStore::Entry* MVStore::find_entry(Key key) const {
  const std::uint64_t h = hash_key(key);
  EntryCacheSlot& slot = t_entry_cache[cache_slot(store_id_, h)];
  if (slot.store_id == store_id_ && slot.key == key) {
    return static_cast<Entry*>(slot.entry);
  }
  const auto& shard = *map_shards_[h % map_shards_.size()];
  Entry* e = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) e = it->second.get();
  }
  // Negative results are not cached: the key may be created at any moment.
  if (e != nullptr) slot = EntryCacheSlot{store_id_, key, e};
  return e;
}

MVStore::Entry& MVStore::get_or_create_entry(Key key) {
  if (Entry* e = find_entry(key)) return *e;
  auto& shard = *map_shards_[hash_key(key) % map_shards_.size()];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto& slot = shard.map[key];
  if (!slot) slot = std::make_unique<Entry>();
  return *slot;
}

void MVStore::load(Key key, Value value, std::size_t cluster_size) {
  Entry& e = get_or_create_entry(key);
  e.latch.lock();
  Version& v =
      e.chain.install(std::move(value), VectorClock(cluster_size),
                      /*origin=*/0, /*seq=*/0);
  e.latest.publish(v.id, v.origin, 0);
  e.latch.unlock();
}

bool MVStore::contains(Key key) const { return find_entry(key) != nullptr; }

std::size_t MVStore::key_count() const {
  std::size_t n = 0;
  for (const auto& shard : map_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    n += shard->map.size();
  }
  return n;
}

ReadResult MVStore::read_read_only(Key key, const VectorClock& tvc,
                                   const std::vector<bool>& has_read,
                                   TxId reader) {
  Entry* e = find_entry(key);
  if (e == nullptr) return {};
  // Exclusive: select_read_only inserts the reader id into the chosen
  // version's access set (visible read, Alg. 3 line 8). No reverse-index
  // registration here — the client flushes its read-key buffer in one
  // batched Remove per site, and remove_tx erases the id through that list.
  e->latch.lock();
  ReadResult r = e->chain.select_read_only(tvc, has_read, reader);
  e->latch.unlock();
  return r;
}

ReadResult MVStore::read_update(Key key, const VectorClock& tvc,
                                const std::vector<bool>& has_read,
                                bool snapshot_fixed) const {
  Entry* e = find_entry(key);
  if (e == nullptr) return {};
  e->latch.lock_shared();
  ReadResult r = e->chain.select_update(tvc, has_read, snapshot_fixed);
  e->latch.unlock_shared();
  return r;
}

ReadResult MVStore::read_walter(Key key, const VectorClock& tvc) const {
  Entry* e = find_entry(key);
  if (e == nullptr) return {};
  e->latch.lock_shared();
  ReadResult r = e->chain.select_walter(tvc);
  e->latch.unlock_shared();
  return r;
}

bool MVStore::validate_key(Key key, const VectorClock& tvc) const {
  Entry* e = find_entry(key);
  if (e == nullptr) return true;  // blind insert of a fresh key
  VersionId id = 0;
  NodeId origin = 0;
  SeqNo vc_origin = 0;
  if (e->latest.try_read(id, origin, vc_origin) && origin < tvc.size()) {
    // Alg. 5 lines 28-32 over the snapshot: id 0 means no version has been
    // installed yet (vacuously valid, matching chain.validate on empty).
    if (id == 0) return true;
    return vc_origin <= tvc[origin];
  }
  e->latch.lock_shared();
  const bool ok = e->chain.validate(tvc);
  e->latch.unlock_shared();
  return ok;
}

bool MVStore::validate_key_version(Key key, VersionId observed) const {
  Entry* e = find_entry(key);
  if (e == nullptr) return observed == 0;
  VersionId id = 0;
  NodeId origin = 0;
  SeqNo vc_origin = 0;
  if (e->latest.try_read(id, origin, vc_origin)) {
    // An entry that exists but has no version yet never validates (the
    // observed id refers to a version this entry does not carry).
    return id != 0 && id == observed;
  }
  e->latch.lock_shared();
  const bool ok = !e->chain.empty() && e->chain.latest().id == observed;
  e->latch.unlock_shared();
  return ok;
}

void MVStore::collect_access_sets(std::span<const Key> keys,
                                  std::vector<TxId>& out) const {
  for (Key k : keys) {
    Entry* e = find_entry(k);
    if (e == nullptr) continue;
    e->latch.lock_shared();
    e->chain.collect_access_sets(out);
    e->latch.unlock_shared();
  }
}

void MVStore::install(Key key, Value value, const VectorClock& commit_vc,
                      NodeId origin, SeqNo seq,
                      std::span<const TxId> collected) {
  Entry& e = get_or_create_entry(key);
  std::vector<TxId> stamped;
  VersionId vid = 0;
  e.latch.lock();
  {
    Version& v = e.chain.install(std::move(value), commit_vc, origin, seq);
    vid = v.id;
    for (TxId id : collected) {
      if (recently_removed(id)) continue;  // the RO tx already finished
      if (v.stamp_insert(id)) stamped.push_back(id);
    }
    e.latest.publish(v.id, origin,
                     origin < commit_vc.size() ? commit_vc[origin] : 0);
  }
  e.latch.unlock();
  // Registrations happen after the latch is released (lock-order rule).
  if (!stamped.empty()) register_readers(stamped, &e, vid);
}

void MVStore::register_readers(std::span<const TxId> ids, Entry* entry,
                               VersionId version_id) {
  // Group the stamped ids by index shard so each shard lock involved is
  // taken once per install, not once per id. Collected sets are small
  // (Fig. 6), so sorting a scratch vector is cheaper than repeated locking.
  std::vector<std::pair<std::size_t, TxId>> by_shard;
  by_shard.reserve(ids.size());
  for (TxId id : ids) {
    by_shard.emplace_back(std::hash<TxId>{}(id) % index_shards_.size(), id);
  }
  std::sort(by_shard.begin(), by_shard.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::size_t i = 0;
  while (i < by_shard.size()) {
    const std::size_t shard_idx = by_shard[i].first;
    auto& shard = *index_shards_[shard_idx];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (; i < by_shard.size() && by_shard[i].first == shard_idx; ++i) {
      shard.map[by_shard[i].second].push_back(IndexRef{entry, version_id});
    }
  }
}

void MVStore::erase_tx_from_chain(Entry& e, TxId tx) {
  e.latch.lock();
  for (auto& v : e.chain.versions()) v.access_set_erase(tx);
  e.latch.unlock();
}

void MVStore::remove_tx(TxId tx, std::span<const Key> read_keys) {
  note_removed(tx);
  // The transaction's own visible-read traces: erase through its batched
  // read-key list (flushed once per transaction by the Remove sender).
  for (Key k : read_keys) {
    Entry* e = find_entry(k);
    if (e != nullptr) erase_tx_from_chain(*e, tx);
  }
  // Ids stamped onto other keys by committing writers (Alg. 5 line 19):
  // the RO client cannot know those locations, so the reverse index does.
  std::vector<IndexRef> refs;
  {
    auto& shard = *index_shards_[std::hash<TxId>{}(tx) % index_shards_.size()];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(tx);
    if (it == shard.map.end()) return;
    refs = std::move(it->second);
    shard.map.erase(it);
  }
  for (const IndexRef& ref : refs) {
    // Duplicate refs for the same version (or a version erased by both the
    // key-list pass and this one) degrade to no-op erases.
    ref.entry->latch.lock();
    for (auto& v : ref.entry->chain.versions()) {
      if (v.id == ref.version_id) {
        v.access_set_erase(tx);
        break;
      }
    }
    ref.entry->latch.unlock();
  }
}

std::size_t MVStore::access_set_footprint() const {
  std::size_t n = 0;
  for (const auto& shard : map_shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      entry->latch.lock_shared();
      for (const auto& v : entry->chain.versions()) n += v.access_set.size();
      entry->latch.unlock_shared();
    }
  }
  return n;
}

MVStore::RemovedStripe& MVStore::removed_stripe(TxId tx) const {
  return removed_[std::hash<TxId>{}(tx) % kRemovedStripes];
}

bool MVStore::recently_removed(TxId tx) const {
  RemovedStripe& stripe = removed_stripe(tx);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return stripe.set.count(tx) > 0;
}

void MVStore::note_removed(TxId tx) {
  RemovedStripe& stripe = removed_stripe(tx);
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.set.insert(tx).second) {
    stripe.ring.push_back(tx);
    if (stripe.ring.size() > removed_stripe_cap_) {
      stripe.set.erase(stripe.ring.front());
      stripe.ring.pop_front();
    }
  }
}

}  // namespace fwkv::store
