#include "store/version_chain.hpp"

#include <cassert>

namespace fwkv::store {

Version& VersionChain::install(Value value, VectorClock vc, NodeId origin,
                               SeqNo seq) {
  Version v;
  v.value = std::move(value);
  v.vc = std::move(vc);
  v.id = versions_.empty() ? 1 : versions_.back().id + 1;
  v.origin = origin;
  v.seq = seq;
  const auto now = std::chrono::steady_clock::now();
  v.created = now;
  versions_.push_back(std::move(v));
  // Bound the chain. A version may be pruned only when (a) it is past the
  // soft cap, (b) its access-set is empty (a non-empty VAS would dangle
  // the node's reverse index), and (c) it has aged out of the retention
  // window (a live snapshot might still need it).
  while (versions_.size() > kMaxVersions &&
         versions_.front().access_set.empty() &&
         now - versions_.front().created > kRetention) {
    versions_.pop_front();
  }
  return versions_.back();
}

ReadResult VersionChain::to_result(const Version& v) const {
  ReadResult r;
  r.found = true;
  r.value = v.value;
  r.vc = v.vc;
  r.id = v.id;
  r.origin = v.origin;
  r.seq = v.seq;
  r.latest_id = versions_.back().id;
  return r;
}

ReadResult VersionChain::select_read_only(const VectorClock& tvc,
                                          const std::vector<bool>& has_read,
                                          TxId reader) {
  if (versions_.empty()) return {};
  const Version* fallback_visible = nullptr;
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    if (!it->vc.leq_masked(tvc, has_read)) continue;  // Alg. 3 line 4
    // Alg. 3 lines 5-6: skip versions the reader was stamped onto at
    // install (anti-dependency). A plain read-time registration of our own
    // id is NOT an exclusion: it means a previous delivery of this same
    // read (rpc retry, duplicated request) already chose a version — fall
    // through and serve fresh, which is idempotent because registration
    // only ever widens future writers' collected sets.
    if (it->excluded_contains(reader)) {
      if (fallback_visible == nullptr) fallback_visible = &*it;
      continue;
    }
    Version& chosen = const_cast<Version&>(*it);
    chosen.access_set_insert(reader);  // Alg. 3 line 8 (visible read)
    return to_result(chosen);
  }
  // Every visible version excludes the reader: its snapshot predates all
  // of them (only reachable if GC pruned past the snapshot, which the
  // chain retention bound makes practically impossible). Serve the newest
  // excluded version as a best effort.
  if (fallback_visible != nullptr) return to_result(*fallback_visible);
  // No version visible at all: only reachable if GC pruned past the
  // snapshot, which the chain bound makes practically impossible. Serve the
  // oldest version as a best effort.
  return to_result(versions_.front());
}

ReadResult VersionChain::select_update(const VectorClock& tvc,
                                       const std::vector<bool>& has_read,
                                       bool snapshot_fixed) const {
  if (versions_.empty()) return {};
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    const Version& v = *it;
    if (!v.vc.leq_masked(tvc, has_read)) continue;  // Alg. 3 line 13
    if (snapshot_fixed) {
      // Alg. 3 line 14: conservatively exclude versions that may have been
      // produced by a transaction concurrent with (or unknown to) T: equal
      // to T's clock on every already-read site, yet ahead of it on some
      // site T has not read from.
      bool eq_on_read_sites = v.vc.eq_masked(tvc, has_read);
      if (eq_on_read_sites) {
        bool ahead_on_unread_site = false;
        for (std::size_t s = 0; s < has_read.size(); ++s) {
          if (!has_read[s] && v.vc[s] > tvc[s]) {
            ahead_on_unread_site = true;
            break;
          }
        }
        if (ahead_on_unread_site) continue;  // excluded
      }
    }
    return to_result(v);
  }
  return to_result(versions_.front());
}

ReadResult VersionChain::select_walter(const VectorClock& tvc) const {
  if (versions_.empty()) return {};
  for (auto it = versions_.rbegin(); it != versions_.rend(); ++it) {
    // Walter visibility: the producer's commit (seq at its origin) must be
    // covered by the begin-time snapshot. The snapshot never advances.
    if (it->seq <= tvc[it->origin]) return to_result(*it);
  }
  return to_result(versions_.front());
}

bool VersionChain::validate(const VectorClock& tvc) const {
  if (versions_.empty()) return true;
  const Version& last = versions_.back();
  // Alg. 5 lines 28-32: abort if the latest version was produced by a
  // transaction whose commit T's clock does not cover.
  return last.vc[last.origin] <= tvc[last.origin];
}

void VersionChain::collect_access_sets(std::vector<TxId>& out) const {
  for (const auto& v : versions_) {
    for (TxId id : v.access_set) {
      out.push_back(id);
    }
  }
}

}  // namespace fwkv::store
