// Per-key multi-version list with the three version-selection policies of
// the evaluated systems:
//
//   select_read_only - FW-KV Alg. 3 lines 2-10 (visibility mask + VAS
//                      exclusion, then freshest remaining);
//   select_update    - FW-KV Alg. 3 lines 11-18 (visibility mask + SCORe-
//                      style conservative exclusion);
//   select_walter    - Walter: latest version whose producer's commit is
//                      already reflected in the begin-time snapshot
//                      (T.VC[v.origin] >= v.seq).
//
// The chain is NOT internally synchronized; MVStore guards each chain with a
// per-key latch.
#pragma once

#include <deque>
#include <optional>

#include "store/version.hpp"

namespace fwkv::store {

class VersionChain {
 public:
  /// Soft cap on chain length: pruning starts past this size, but a
  /// version is only pruned when its access-set is empty AND it is older
  /// than kRetention — an in-flight transaction (even one stalled by the
  /// scheduler) can still be served the version its snapshot requires.
  /// Memory stays bounded by the per-key write rate times the retention
  /// window.
  static constexpr std::size_t kMaxVersions = 64;
  static constexpr std::chrono::milliseconds kRetention{250};

  bool empty() const { return versions_.empty(); }
  std::size_t size() const { return versions_.size(); }

  const Version& latest() const { return versions_.back(); }
  Version& latest() { return versions_.back(); }

  /// Append a new version; id is assigned (previous id + 1).
  Version& install(Value value, VectorClock vc, NodeId origin, SeqNo seq);

  /// FW-KV read-only rule. `reader` is inserted into the selected version's
  /// access set (visible-reads technique, Alg. 3 line 8).
  ReadResult select_read_only(const VectorClock& tvc,
                              const std::vector<bool>& has_read, TxId reader);

  /// FW-KV update-transaction rule. `snapshot_fixed` must be true iff the
  /// transaction has at least one has_read entry set — the conservative
  /// exclusion only applies after the first read (§4.3, Fig. 4).
  ReadResult select_update(const VectorClock& tvc,
                           const std::vector<bool>& has_read,
                           bool snapshot_fixed) const;

  /// Walter rule: snapshot fixed at begin, per-origin scalar visibility.
  ReadResult select_walter(const VectorClock& tvc) const;

  /// Alg. 5 validate() for this key: false iff the latest version was
  /// produced by a transaction the reader's clock does not cover.
  bool validate(const VectorClock& tvc) const;

  /// All read-only tx ids present in any version's access set (Alg. 5
  /// lines 8-10 collect from the written key).
  void collect_access_sets(std::vector<TxId>& out) const;

  /// Direct access for scenario tests and the Remove handler (via MVStore).
  std::deque<Version>& versions() { return versions_; }
  const std::deque<Version>& versions() const { return versions_; }

 private:
  ReadResult to_result(const Version& v) const;

  std::deque<Version> versions_;
};

}  // namespace fwkv::store
