// Per-key transactional locks with owner tracking and timed acquisition
// (the paper sets the acquisition timeout to 1 ms, matching ~50 message
// flight times on its testbed; the simulator keeps the same ratio).
//
// Modes:
//   exclusive - 2PC prepare on written keys (Alg. 5 line 3);
//   shared    - FW-KV read handlers (Alg. 3 lines 3/12; the paper notes
//               read-only transactions may run read handlers concurrently,
//               so reads share), and 2PC-baseline read validation.
//
// Acquisition of multiple keys must be performed in sorted key order by the
// caller; combined with timeouts this makes the table deadlock-free.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"

namespace fwkv::store {

class LockTable {
 public:
  explicit LockTable(std::size_t shards = 64);

  /// Acquire an exclusive lock; blocks up to `timeout`. Re-acquisition by
  /// the current exclusive owner succeeds immediately (idempotent).
  bool lock_exclusive(Key key, TxId owner, std::chrono::nanoseconds timeout);

  /// Acquire a shared lock; blocks up to `timeout` while an exclusive
  /// holder is present.
  bool lock_shared(Key key, TxId owner, std::chrono::nanoseconds timeout);

  void unlock_exclusive(Key key, TxId owner);
  void unlock_shared(Key key, TxId owner);

  /// Sorted, all-or-nothing multi-key exclusive acquisition: on any timeout
  /// the keys already acquired are released and false is returned.
  bool lock_all_exclusive(std::span<const Key> sorted_keys, TxId owner,
                          std::chrono::nanoseconds per_key_timeout);
  void unlock_all_exclusive(std::span<const Key> keys, TxId owner);

  /// True iff `owner` holds the exclusive lock on `key` (test helper).
  bool held_exclusive(Key key, TxId owner) const;

 private:
  struct LockState {
    TxId exclusive_owner = kInvalidTxId;
    std::uint32_t shared_count = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<Key, LockState> locks;
  };

  Shard& shard_for(Key key);
  const Shard& shard_for(Key key) const;

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace fwkv::store
