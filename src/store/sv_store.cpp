#include "store/sv_store.hpp"

#include <cassert>
#include <mutex>

#include "common/consistent_hash.hpp"

namespace fwkv::store {

SVStore::SVStore(std::size_t shards) {
  assert(shards > 0);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SVStore::Shard& SVStore::shard_for(Key key) {
  return *shards_[hash_key(key) % shards_.size()];
}

const SVStore::Shard& SVStore::shard_for(Key key) const {
  return *shards_[hash_key(key) % shards_.size()];
}

void SVStore::load(Key key, Value value) {
  Shard& s = shard_for(key);
  std::unique_lock<std::shared_mutex> lock(s.mu);
  auto& item = s.map[key];
  item.value = std::move(value);
  item.version = 1;
}

std::optional<SVStore::Item> SVStore::read(Key key) const {
  const Shard& s = shard_for(key);
  std::shared_lock<std::shared_mutex> lock(s.mu);
  auto it = s.map.find(key);
  if (it == s.map.end()) return std::nullopt;
  return it->second;
}

bool SVStore::validate(Key key, VersionId expected) const {
  const Shard& s = shard_for(key);
  std::shared_lock<std::shared_mutex> lock(s.mu);
  auto it = s.map.find(key);
  const VersionId current = it == s.map.end() ? 0 : it->second.version;
  return current == expected;
}

void SVStore::install(Key key, Value value) {
  Shard& s = shard_for(key);
  std::unique_lock<std::shared_mutex> lock(s.mu);
  auto& item = s.map[key];
  item.value = std::move(value);
  ++item.version;
}

std::size_t SVStore::key_count() const {
  std::size_t n = 0;
  for (const auto& s : shards_) {
    std::shared_lock<std::shared_mutex> lock(s->mu);
    n += s->map.size();
  }
  return n;
}

}  // namespace fwkv::store
