// A single committed version of a shared object (§4.1 "Metadata").
#pragma once

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/ids.hpp"
#include "common/vector_clock.hpp"

namespace fwkv::store {

/// One entry of a key's multi-version list. Mutation of `access_set` is
/// guarded by the owning chain's latch (see MVStore).
struct Version {
  Value value;
  /// Commit vector clock of the producing transaction ("v.VC").
  VectorClock vc;
  /// Per-key monotonically increasing identifier ("v.id").
  VersionId id = 0;
  /// Node where the producing transaction committed (its coordinator).
  NodeId origin = 0;
  /// Producing transaction's sequence number at `origin` (== vc[origin]).
  SeqNo seq = 0;
  /// Version-access-set ("v.accessSet"): ids of read-only transactions that
  /// read this version, plus ids transitively propagated by committing
  /// update transactions (Alg. 5 line 19). Small in practice (Fig. 6), so a
  /// flat vector beats a node-based set.
  std::vector<TxId> access_set;
  /// The subset of access_set stamped at install time (Alg. 5 line 19):
  /// readers with an anti-dependency on the producing transaction, which
  /// must NOT be served this version. Kept apart from read-time
  /// registrations because a retried/redelivered read finds its own id
  /// already registered — that means "already read", not "excluded", and
  /// serving an older version in that case tears the reader's snapshot.
  std::vector<TxId> excluded;
  /// Install time; GC never prunes versions younger than the retention
  /// window, so a running transaction's snapshot stays servable.
  std::chrono::steady_clock::time_point created;

  bool access_set_contains(TxId id_in) const {
    return std::find(access_set.begin(), access_set.end(), id_in) !=
           access_set.end();
  }

  /// Returns true if the id was inserted (false if already present).
  bool access_set_insert(TxId id_in) {
    if (access_set_contains(id_in)) return false;
    access_set.push_back(id_in);
    return true;
  }

  bool excluded_contains(TxId id_in) const {
    return std::find(excluded.begin(), excluded.end(), id_in) !=
           excluded.end();
  }

  /// Install-time stamp: registers the id AND excludes it from visibility.
  /// Returns true if the id was inserted.
  bool stamp_insert(TxId id_in) {
    if (!access_set_insert(id_in)) return false;
    excluded.push_back(id_in);
    return true;
  }

  /// Returns true if the id was present and removed.
  bool access_set_erase(TxId id_in) {
    auto it = std::find(access_set.begin(), access_set.end(), id_in);
    if (it == access_set.end()) return false;
    *it = access_set.back();
    access_set.pop_back();
    auto ex = std::find(excluded.begin(), excluded.end(), id_in);
    if (ex != excluded.end()) {
      *ex = excluded.back();
      excluded.pop_back();
    }
    return true;
  }
};

/// Outcome of a version-selection read (Alg. 3 line 19 payload).
struct ReadResult {
  bool found = false;
  Value value;
  VectorClock vc;
  VersionId id = 0;
  NodeId origin = 0;
  SeqNo seq = 0;
  /// Freshness instrumentation: id of the newest installed version at the
  /// time the read was served.
  VersionId latest_id = 0;
};

}  // namespace fwkv::store
