// Per-node multi-versioned data repository (§2.2) with the reverse
// version-access-set index that makes Remove handling (Alg. 6 lines 5-10)
// O(entries-for-this-tx) instead of O(store).
//
// Synchronization layers, innermost to outermost:
//   1. shard maps (shared_mutex)     - key lookup / creation;
//   2. per-key latch (Entry::latch)  - chain and VAS mutation;
//   3. LockTable (owned by the node) - transactional isolation windows.
// The reverse index has its own shards and is never held together with a
// key latch (registrations are applied after the latch is released), so the
// store is free of lock-order cycles.
#pragma once

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <deque>
#include <vector>

#include "store/version_chain.hpp"

namespace fwkv::store {

class MVStore {
 public:
  explicit MVStore(std::size_t shards = 64);

  /// Bulk-load path: install an initial version with an all-zero commit
  /// clock (visible to every snapshot).
  void load(Key key, Value value, std::size_t cluster_size);

  bool contains(Key key) const;
  std::size_t key_count() const;

  /// FW-KV read-only rule; registers `reader` in the selected version's
  /// access set and in the reverse index.
  ReadResult read_read_only(Key key, const VectorClock& tvc,
                            const std::vector<bool>& has_read, TxId reader);

  /// FW-KV update-transaction rule (no VAS side effects).
  ReadResult read_update(Key key, const VectorClock& tvc,
                         const std::vector<bool>& has_read,
                         bool snapshot_fixed) const;

  /// Walter rule (begin-time snapshot, no VAS).
  ReadResult read_walter(Key key, const VectorClock& tvc) const;

  /// Alg. 5 validate() over one written key (clock rule, blind writes).
  bool validate_key(Key key, const VectorClock& tvc) const;

  /// Validation by version identity for read-modify-write keys: true iff
  /// the latest version is still the one the transaction observed.
  bool validate_key_version(Key key, VersionId observed) const;

  /// Alg. 5 lines 8-10: union of access sets across the written keys.
  void collect_access_sets(std::span<const Key> keys,
                           std::vector<TxId>& out) const;

  /// Install a new version of `key` and stamp `collected` into its access
  /// set (Alg. 5 lines 17-20). Creates the key if absent (TPC-C inserts).
  void install(Key key, Value value, const VectorClock& commit_vc,
               NodeId origin, SeqNo seq, std::span<const TxId> collected);

  /// Alg. 6 lines 5-10: erase `tx` from every access set on this node.
  void remove_tx(TxId tx);

  /// Sum of access-set sizes across the node (space-overhead metric, §5.1).
  std::size_t access_set_footprint() const;

  /// Test/example helper: run `fn` with the key's chain latched.
  template <typename Fn>
  bool with_chain(Key key, Fn&& fn) {
    Entry* e = find_entry(key);
    if (e == nullptr) return false;
    std::lock_guard<std::mutex> latch(e->latch);
    fn(e->chain);
    return true;
  }

 private:
  struct Entry {
    std::mutex latch;
    VersionChain chain;
  };
  struct MapShard {
    mutable std::shared_mutex mu;
    std::unordered_map<Key, std::unique_ptr<Entry>> map;
  };

  /// Where a transaction's id sits: which entry and which version id.
  struct IndexRef {
    Entry* entry;
    VersionId version_id;
  };
  struct IndexShard {
    std::mutex mu;
    std::unordered_map<TxId, std::vector<IndexRef>> map;
  };

  Entry* find_entry(Key key) const;
  Entry& get_or_create_entry(Key key);
  void register_reader(TxId tx, Entry* entry, VersionId version_id);
  bool recently_removed(TxId tx) const;
  void note_removed(TxId tx);

  std::vector<std::unique_ptr<MapShard>> map_shards_;
  std::vector<std::unique_ptr<IndexShard>> index_shards_;

  // Transactions whose Remove already ran: late collected-set stamping for
  // them is suppressed so their ids cannot leak into new versions forever.
  static constexpr std::size_t kRemovedRing = 1 << 16;
  mutable std::mutex removed_mu_;
  std::unordered_set<TxId> removed_set_;
  std::deque<TxId> removed_ring_;
};

}  // namespace fwkv::store
