// Per-node multi-versioned data repository (§2.2) with the reverse
// version-access-set index that makes Remove handling (Alg. 6 lines 5-10)
// O(entries-for-this-tx) instead of O(store).
//
// Synchronization layers, innermost to outermost:
//   1. shard maps (shared_mutex)       - key lookup / creation; a per-thread
//      resolved-Entry cache short-circuits repeat lookups (entries are
//      immortal for the store's lifetime, so cached pointers never dangle);
//   2. per-key latch (EntryLatch)      - reader-writer: chain/VAS mutation
//      takes it exclusive, chain-scanning reads take it shared, and
//      prepare-path validation usually skips it entirely via the per-entry
//      seqlock snapshot of the latest version (LatestSnap);
//   3. LockTable (owned by the node)   - transactional isolation windows.
// The reverse index has its own shards and is never held together with a
// key latch (registrations are applied after the latch is released), so the
// store is free of lock-order cycles. The reverse index only tracks ids
// stamped by committing update transactions (Alg. 5 line 19) — a read-only
// transaction's own registrations are deregistered through the batched
// key list its Remove carries (one flush per transaction, not one index
// lock per read).
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <deque>
#include <vector>

#include "store/version_chain.hpp"

namespace fwkv::store {

/// Per-key reader-writer spin latch (4 bytes, no futex on the fast path).
/// Chain critical sections are tens of nanoseconds, so contended waiters
/// spin briefly and then yield; shared mode lets concurrent readers of a
/// hot key proceed without serializing (a std::mutex would).
class EntryLatch {
 public:
  void lock() {
    // Claim the writer bit first (stops new readers), then drain readers.
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    int spins = 0;
    for (;;) {
      if ((s & kWriter) == 0) {
        if (state_.compare_exchange_weak(s, s | kWriter,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          break;
        }
      } else {
        backoff(spins);
        s = state_.load(std::memory_order_relaxed);
      }
    }
    spins = 0;
    while (state_.load(std::memory_order_acquire) != kWriter) backoff(spins);
  }

  void unlock() { state_.store(0, std::memory_order_release); }

  void lock_shared() {
    std::uint32_t s = state_.load(std::memory_order_relaxed);
    int spins = 0;
    for (;;) {
      if ((s & kWriter) == 0) {
        if (state_.compare_exchange_weak(s, s + kReader,
                                         std::memory_order_acquire,
                                         std::memory_order_relaxed)) {
          return;
        }
      } else {
        backoff(spins);
        s = state_.load(std::memory_order_relaxed);
      }
    }
  }

  void unlock_shared() { state_.fetch_sub(kReader, std::memory_order_release); }

 private:
  static constexpr std::uint32_t kWriter = 1u;
  static constexpr std::uint32_t kReader = 2u;

  static void backoff(int& spins) {
    // This simulator regularly runs more lanes than cores; yield early so a
    // descheduled latch holder gets CPU time instead of being spun against.
    if (++spins > 8) std::this_thread::yield();
  }

  std::atomic<std::uint32_t> state_{0};
};

/// Seqlock-published snapshot of the facts validation needs about a key's
/// latest version. All fields are atomics (relaxed accesses bracketed by the
/// sequence counter), so the lock-free read lane is data-race-free by
/// construction — ThreadSanitizer-clean, not just "probably fine".
/// id == 0 means "no version installed yet" (version ids start at 1).
struct LatestSnap {
  std::atomic<std::uint64_t> seq{0};  // even = stable, odd = write in flight
  std::atomic<VersionId> id{0};
  std::atomic<NodeId> origin{0};
  std::atomic<SeqNo> vc_origin{0};  // latest.vc[latest.origin]

  /// Writer side; callers hold the entry latch exclusive, so writers never
  /// race each other.
  void publish(VersionId id_in, NodeId origin_in, SeqNo vc_origin_in) {
    const std::uint64_t s = seq.load(std::memory_order_relaxed);
    seq.store(s + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    id.store(id_in, std::memory_order_relaxed);
    origin.store(origin_in, std::memory_order_relaxed);
    vc_origin.store(vc_origin_in, std::memory_order_relaxed);
    seq.store(s + 2, std::memory_order_release);
  }

  /// Reader side: false if a concurrent publish kept the snapshot unstable
  /// (caller falls back to the latched path).
  bool try_read(VersionId& id_out, NodeId& origin_out,
                SeqNo& vc_origin_out) const {
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint64_t s1 = seq.load(std::memory_order_acquire);
      if (s1 & 1) continue;
      id_out = id.load(std::memory_order_relaxed);
      origin_out = origin.load(std::memory_order_relaxed);
      vc_origin_out = vc_origin.load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (seq.load(std::memory_order_relaxed) == s1) return true;
    }
    return false;
  }
};

class MVStore {
 public:
  /// Transactions whose Remove already ran: late collected-set stamping for
  /// them is suppressed so their ids cannot leak into new versions forever.
  /// The memory is a ring (total capacity across stripes); overflowing it
  /// forgets the oldest finished transactions.
  static constexpr std::size_t kRemovedRing = 1 << 16;

  explicit MVStore(std::size_t shards = 64,
                   std::size_t removed_capacity = kRemovedRing);
  ~MVStore();

  /// Bulk-load path: install an initial version with an all-zero commit
  /// clock (visible to every snapshot).
  void load(Key key, Value value, std::size_t cluster_size);

  bool contains(Key key) const;
  std::size_t key_count() const;

  /// FW-KV read-only rule; registers `reader` in the selected version's
  /// access set. Deregistration is the caller's duty: the finished
  /// transaction's Remove must carry the keys it read here (remove_tx).
  ReadResult read_read_only(Key key, const VectorClock& tvc,
                            const std::vector<bool>& has_read, TxId reader);

  /// FW-KV update-transaction rule (no VAS side effects).
  ReadResult read_update(Key key, const VectorClock& tvc,
                         const std::vector<bool>& has_read,
                         bool snapshot_fixed) const;

  /// Walter rule (begin-time snapshot, no VAS).
  ReadResult read_walter(Key key, const VectorClock& tvc) const;

  /// Alg. 5 validate() over one written key (clock rule, blind writes).
  /// Served from the seqlock snapshot when stable; latch-free in the common
  /// case.
  bool validate_key(Key key, const VectorClock& tvc) const;

  /// Validation by version identity for read-modify-write keys: true iff
  /// the latest version is still the one the transaction observed. Also
  /// seqlock-served.
  bool validate_key_version(Key key, VersionId observed) const;

  /// Alg. 5 lines 8-10: union of access sets across the written keys.
  void collect_access_sets(std::span<const Key> keys,
                           std::vector<TxId>& out) const;

  /// Install a new version of `key` and stamp `collected` into its access
  /// set (Alg. 5 lines 17-20). Creates the key if absent (TPC-C inserts).
  void install(Key key, Value value, const VectorClock& commit_vc,
               NodeId origin, SeqNo seq, std::span<const TxId> collected);

  /// Alg. 6 lines 5-10: erase `tx` from every access set on this node.
  /// `read_keys` is the transaction's batched registration buffer (the keys
  /// it read here); ids stamped onto other keys by committing writers are
  /// found through the reverse index.
  void remove_tx(TxId tx, std::span<const Key> read_keys);
  void remove_tx(TxId tx) { remove_tx(tx, std::span<const Key>{}); }

  /// Sum of access-set sizes across the node (space-overhead metric, §5.1).
  std::size_t access_set_footprint() const;

  /// Introspection (tests): is late stamping of `tx` currently suppressed?
  bool recently_removed(TxId tx) const;

  /// Test/example helper: run `fn` with the key's chain latched exclusive.
  template <typename Fn>
  bool with_chain(Key key, Fn&& fn) {
    Entry* e = find_entry(key);
    if (e == nullptr) return false;
    e->latch.lock();
    fn(e->chain);
    e->latch.unlock();
    return true;
  }

 private:
  struct Entry {
    mutable EntryLatch latch;
    LatestSnap latest;
    VersionChain chain;
  };
  struct MapShard {
    mutable std::shared_mutex mu;
    std::unordered_map<Key, std::unique_ptr<Entry>> map;
  };

  /// Where a stamped transaction id sits: which entry and which version id.
  struct IndexRef {
    Entry* entry;
    VersionId version_id;
  };
  struct IndexShard {
    std::mutex mu;
    std::unordered_map<TxId, std::vector<IndexRef>> map;
  };

  /// Striped removed-transaction memory: installs on different stripes
  /// never serialize (the former single removed_mu_ was taken once per
  /// collected id on every install).
  static constexpr std::size_t kRemovedStripes = 16;
  struct RemovedStripe {
    mutable std::mutex mu;
    std::unordered_set<TxId> set;
    std::deque<TxId> ring;
  };

  Entry* find_entry(Key key) const;
  Entry& get_or_create_entry(Key key);
  /// Batch-register stamped ids for one installed version: each index shard
  /// involved is locked once, not once per id.
  void register_readers(std::span<const TxId> ids, Entry* entry,
                        VersionId version_id);
  RemovedStripe& removed_stripe(TxId tx) const;
  void note_removed(TxId tx);
  static void erase_tx_from_chain(Entry& e, TxId tx);

  /// Identity for the per-thread resolved-Entry cache; never reused across
  /// MVStore instances, so a stale slot can never satisfy a lookup against
  /// a different (or reincarnated) store.
  const std::uint64_t store_id_;

  std::vector<std::unique_ptr<MapShard>> map_shards_;
  std::vector<std::unique_ptr<IndexShard>> index_shards_;

  mutable std::array<RemovedStripe, kRemovedStripes> removed_;
  std::size_t removed_stripe_cap_;
};

}  // namespace fwkv::store
