#include "store/lock_table.hpp"

#include <algorithm>
#include <cassert>

#include "common/consistent_hash.hpp"

namespace fwkv::store {

LockTable::LockTable(std::size_t shards) {
  assert(shards > 0);
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

LockTable::Shard& LockTable::shard_for(Key key) {
  return *shards_[hash_key(key) % shards_.size()];
}

const LockTable::Shard& LockTable::shard_for(Key key) const {
  return *shards_[hash_key(key) % shards_.size()];
}

bool LockTable::lock_exclusive(Key key, TxId owner,
                               std::chrono::nanoseconds timeout) {
  Shard& s = shard_for(key);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(s.mu);
  for (;;) {
    LockState& st = s.locks[key];
    if (st.exclusive_owner == owner) return true;  // idempotent re-acquire
    if (!st.exclusive_owner.valid() && st.shared_count == 0) {
      st.exclusive_owner = owner;
      return true;
    }
    if (s.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      // One final check: the state may have changed as we timed out.
      LockState& st2 = s.locks[key];
      if (!st2.exclusive_owner.valid() && st2.shared_count == 0) {
        st2.exclusive_owner = owner;
        return true;
      }
      return false;
    }
  }
}

bool LockTable::lock_shared(Key key, TxId /*owner*/,
                            std::chrono::nanoseconds timeout) {
  Shard& s = shard_for(key);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  std::unique_lock<std::mutex> lock(s.mu);
  for (;;) {
    LockState& st = s.locks[key];
    if (!st.exclusive_owner.valid()) {
      ++st.shared_count;
      return true;
    }
    if (s.cv.wait_until(lock, deadline) == std::cv_status::timeout) {
      LockState& st2 = s.locks[key];
      if (!st2.exclusive_owner.valid()) {
        ++st2.shared_count;
        return true;
      }
      return false;
    }
  }
}

void LockTable::unlock_exclusive(Key key, TxId owner) {
  Shard& s = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.locks.find(key);
    assert(it != s.locks.end());
    assert(it->second.exclusive_owner == owner);
    (void)owner;
    it->second.exclusive_owner = kInvalidTxId;
    if (it->second.shared_count == 0) s.locks.erase(it);
  }
  s.cv.notify_all();
}

void LockTable::unlock_shared(Key key, TxId /*owner*/) {
  Shard& s = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(s.mu);
    auto it = s.locks.find(key);
    assert(it != s.locks.end());
    assert(it->second.shared_count > 0);
    --it->second.shared_count;
    if (it->second.shared_count == 0 && !it->second.exclusive_owner.valid()) {
      s.locks.erase(it);
    }
  }
  s.cv.notify_all();
}

bool LockTable::lock_all_exclusive(std::span<const Key> sorted_keys,
                                   TxId owner,
                                   std::chrono::nanoseconds per_key_timeout) {
  assert(std::is_sorted(sorted_keys.begin(), sorted_keys.end()));
  for (std::size_t i = 0; i < sorted_keys.size(); ++i) {
    if (!lock_exclusive(sorted_keys[i], owner, per_key_timeout)) {
      for (std::size_t j = 0; j < i; ++j) {
        unlock_exclusive(sorted_keys[j], owner);
      }
      return false;
    }
  }
  return true;
}

void LockTable::unlock_all_exclusive(std::span<const Key> keys, TxId owner) {
  for (Key k : keys) unlock_exclusive(k, owner);
}

bool LockTable::held_exclusive(Key key, TxId owner) const {
  const Shard& s = shard_for(key);
  std::lock_guard<std::mutex> lock(s.mu);
  auto it = s.locks.find(key);
  return it != s.locks.end() && it->second.exclusive_owner == owner;
}

}  // namespace fwkv::store
