#include "core/mv_node.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "net/network.hpp"

namespace fwkv {

using net::DecideMessage;
using net::Message;
using net::PrepareRequest;
using net::PropagateMessage;
using net::ReadRequest;
using net::ReadReturn;
using net::RemoveMessage;
using net::VoteFail;
using net::VoteReply;
using net::WriteEntry;

MvNodeBase::MvNodeBase(NodeId id, ClusterContext& ctx)
    : KvNode(id, ctx),
      site_vc_(ctx.num_nodes),
      pending_(ctx.num_nodes),
      next_unsent_(ctx.num_nodes, 1) {
  // Kick off the periodic propagation flush (Walter propagates outside the
  // transaction critical path). The task re-arms itself on the timer.
  ctx_.network->schedule(ctx_.config.propagate_flush_interval,
                         [this] { flush_timer_tick(); });
}

// ---------------------------------------------------------------------------
// Client-side operations (run on the client's thread, co-located with us).
// ---------------------------------------------------------------------------

void MvNodeBase::begin(Transaction& tx) {
  // Alg. 1: T.VC <- siteVC_i; hasRead[*] <- false.
  std::lock_guard<std::mutex> lock(site_mu_);
  tx.vc() = site_vc_;
  tx.has_read().reset();
}

net::TxDescriptor MvNodeBase::descriptor(const Transaction& tx) const {
  net::TxDescriptor d;
  d.id = tx.id();
  d.read_only = tx.read_only();
  d.vc = tx.vc();
  d.has_read = tx.has_read();
  return d;
}

std::optional<Value> MvNodeBase::read(Transaction& tx, Key key) {
  // Alg. 2 lines 2-4: read-your-writes from the private write buffer.
  if (auto written = tx.written_value(key)) return written;
  // Client-side repeatable-read cache: a re-read must return the value this
  // transaction already observed (and must not re-enter the version-access
  // -set logic with its own id already present).
  if (auto cached = tx.cached_read(key)) return cached;

  const NodeId target = ctx_.mapper->node_for(key);  // Alg. 2 line 5
  ReadRequest req;
  req.tx = descriptor(tx);
  req.key = key;
  auto call = ctx_.network->send_request(id_, target, std::move(req));
  auto reply = call.await(ctx_.config.rpc_timeout);
  if (!reply.has_value()) return std::nullopt;  // unreachable in practice
  auto& rr = std::get<ReadReturn>(*reply);
  if (!rr.found) return std::nullopt;

  if (fresh_reads()) {
    // Alg. 2 lines 8-9: freeze this site's snapshot and merge the version's
    // commit clock into the reading snapshot; the entry for the contacted
    // site advances to the site's current sequence (Fig. 2: "T1 also
    // updates T1.VC[2] to the latest timestamp of N2"). Walter's snapshot
    // is fixed at begin and never advances (§3.2).
    tx.has_read().set(target);
    tx.vc().merge(rr.version_vc);
    if (rr.server_seq > tx.vc()[target]) tx.vc()[target] = rr.server_seq;
  }
  if (tx.read_only() && track_antideps()) {
    // Alg. 2 lines 10-12: buffer (site, key) so commit can flush one
    // batched Remove per contacted site.
    tx.record_read_key(target, key);
  }
  if (!tx.read_only()) {
    // Remember the version observed so that, if this key is later written,
    // prepare can certify it "has not been overwritten meanwhile" (§4.4)
    // by version identity. The origin-entry clock comparison alone (Alg. 5
    // line 29) is defeated when a later read merges an unrelated commit's
    // clock into T.VC (Alg. 2 line 9) that covers the conflicting writer's
    // entry — a read-modify-write could then overwrite a version it never
    // saw. The id check closes that hole; blind writes still use the
    // clock rule.
    tx.record_validation(key, rr.version_id);
  }
  tx.record_read_freshness(rr.version_id, rr.latest_id);
  tx.cache_read(key, rr.value);
  return rr.value;
}

bool MvNodeBase::commit(Transaction& tx) {
  // Alg. 4 lines 2-8: read-only commit is a local decision plus async
  // cleanup of the transaction's visible-read traces.
  if (tx.write_set().empty()) {
    if (track_antideps()) {
      // One Remove per contacted site, carrying the transaction's batched
      // registration buffer for that site: the handler deregisters the
      // visible-read traces through the key list and the reverse index
      // covers ids stamped elsewhere by committing writers (Alg. 6 l. 5-10).
      for (auto& [site, keys] : tx.registrations_by_site()) {
        ctx_.network->send(id_, site, RemoveMessage{tx.id(), std::move(keys)});
      }
    }
    tx.mark_committed();
    stats_.ro_commits.add();
    return true;
  }

  // Alg. 4 lines 9-21: 2PC over the preferred sites of the write-set.
  std::map<NodeId, std::vector<WriteEntry>> by_site;
  for (const auto& [key, value] : tx.write_set()) {
    by_site[ctx_.mapper->node_for(key)].push_back(WriteEntry{key, value});
  }

  std::vector<net::RpcCall> calls;
  std::vector<NodeId> participants;
  calls.reserve(by_site.size());
  for (auto& [site, writes] : by_site) {
    PrepareRequest prep;
    prep.tx = tx.id();
    prep.tx_vc = tx.vc();
    prep.writes = writes;
    // Attach the observed version of every written key this transaction
    // also read (read-modify-write); the participant validates identity.
    for (const auto& w : writes) {
      auto it = tx.validation_set().find(w.key);
      if (it != tx.validation_set().end()) {
        prep.reads.push_back(net::ReadValidationEntry{w.key, it->second});
      }
    }
    participants.push_back(site);
    calls.push_back(ctx_.network->send_request(id_, site, std::move(prep)));
  }

  bool outcome = true;
  AbortReason reason = AbortReason::kNone;
  std::vector<TxId> collected;
  for (auto& call : calls) {
    auto reply = call.await(ctx_.config.rpc_timeout);
    if (!reply.has_value()) {
      outcome = false;
      if (reason == AbortReason::kNone) reason = AbortReason::kVoteTimeout;
      continue;  // keep draining votes so every participant gets a Decide
    }
    const auto& vote = std::get<VoteReply>(*reply);
    if (!vote.ok) {
      outcome = false;
      if (reason == AbortReason::kNone) {
        reason = vote.fail_reason == VoteFail::kLock
                     ? AbortReason::kLockTimeout
                     : AbortReason::kValidation;
      }
    } else {
      collected.insert(collected.end(), vote.collected_set.begin(),
                       vote.collected_set.end());
    }
  }

  SeqNo seq = 0;
  VectorClock commit_vc;
  std::vector<std::pair<NodeId, PropagateMessage>> flushes;
  if (outcome) {
    // Alg. 4 line 19 + dedupe: T.collectedSet is a set.
    std::sort(collected.begin(), collected.end());
    collected.erase(std::unique(collected.begin(), collected.end()),
                    collected.end());
    if (track_antideps()) {
      stats_.collected_set_size.record(collected.size());  // Fig. 6 metric
    }
    // Alg. 4 lines 22-25: take the next local sequence number, finalize the
    // commit vector clock, and record who receives this seq as a Decide.
    std::lock_guard<std::mutex> lock(site_mu_);
    seq = ++curr_seq_;
    commit_vc = site_vc_;
    commit_vc[id_] = seq;
    CommitRecord rec;
    rec.decide_dests = participants;
    if (by_site.count(id_) == 0) rec.decide_dests.push_back(id_);
    commit_log_.push_back(std::move(rec));
    // Flush pending Propagate ranges to the participants right now: their
    // Decide application (Alg. 5 line 16) must not stall on a batch that
    // is still waiting for the periodic flush.
    for (NodeId p : participants) {
      if (p != id_) collect_ranges_locked(p, flushes);
    }
  }
  for (auto& [dest, msg] : flushes) {
    ctx_.network->send(id_, dest, msg);
  }

  // Alg. 4 line 26: Decide to the participants plus ourselves (the
  // coordinator must advance its own siteVC entry in seq order too).
  bool self_is_participant = by_site.count(id_) > 0;
  for (NodeId site : participants) {
    DecideMessage d;
    d.tx = tx.id();
    d.outcome = outcome;
    d.origin = id_;
    d.seq_no = seq;
    d.commit_vc = commit_vc;
    d.writes = by_site[site];
    d.collected_set = collected;
    ctx_.network->send(id_, site, std::move(d));
  }
  if (!self_is_participant && outcome) {
    DecideMessage d;
    d.tx = tx.id();
    d.outcome = true;
    d.origin = id_;
    d.seq_no = seq;
    d.commit_vc = commit_vc;
    ctx_.network->send(id_, id_, std::move(d));
  }

  if (outcome) {
    // Alg. 4 line 27: the asynchronous Propagate to all other nodes is
    // batched; the periodic flush (flush_timer_tick) carries it.
    tx.mark_committed();
    stats_.update_commits.add();
    return true;
  }

  tx.mark_aborted(reason);
  switch (reason) {
    case AbortReason::kLockTimeout:
      stats_.aborts_lock.add();
      break;
    case AbortReason::kValidation:
      stats_.aborts_validation.add();
      break;
    default:
      stats_.aborts_vote_timeout.add();
      break;
  }
  return false;
}

void MvNodeBase::load(Key key, Value value) {
  store_.load(key, std::move(value), ctx_.num_nodes);
}

// ---------------------------------------------------------------------------
// Server-side message handlers.
// ---------------------------------------------------------------------------

void MvNodeBase::handle_message(Message msg, NodeId /*from*/) {
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ReadRequest>) {
          on_read_request(m);
        } else if constexpr (std::is_same_v<T, PrepareRequest>) {
          on_prepare(m);
        } else if constexpr (std::is_same_v<T, DecideMessage>) {
          on_decide(std::move(m));
        } else if constexpr (std::is_same_v<T, PropagateMessage>) {
          on_propagate(m);
        } else if constexpr (std::is_same_v<T, RemoveMessage>) {
          on_remove(m);
        } else {
          assert(false && "replies are routed by the network, not here");
        }
      },
      std::move(msg));
}

std::size_t MvNodeBase::pending_work() const {
  return pending_count_.load(std::memory_order_acquire);
}

void MvNodeBase::read_lock_shared(Key key, TxId tx) {
  // Reads never give up: they wait out concurrent prepare->decide windows.
  // The data/control lane split guarantees the Decide that releases the
  // exclusive lock can always run.
  while (!locks_.lock_shared(key, tx, ctx_.config.lock_timeout)) {
  }
}

void MvNodeBase::on_read_request(const ReadRequest& req) {
  stats_.reads_served.add();
  store::ReadResult r;
  if (!fresh_reads()) {
    // Walter: no read/update distinction and no access-set maintenance.
    // The shared lock is still taken: a participant holds its write locks
    // from prepare until the decide applies, so a reader whose snapshot
    // already covers that commit waits for the installation instead of
    // being served a torn (pre-commit) version of the key.
    read_lock_shared(req.key, req.tx.id);
    r = store_.read_walter(req.key, req.tx.vc);
    locks_.unlock_shared(req.key, req.tx.id);
  } else if (req.tx.read_only) {
    // Alg. 3 lines 2-10 under a shared lock (read handlers exclude update
    // commit handlers but run concurrently with each other).
    read_lock_shared(req.key, req.tx.id);
    r = store_.read_read_only(req.key, req.tx.vc, req.tx.has_read.bits(),
                              req.tx.id);
    locks_.unlock_shared(req.key, req.tx.id);
  } else {
    // Alg. 3 lines 11-18; the conservative exclusion applies only once the
    // snapshot is partially fixed (first reads return the latest version).
    read_lock_shared(req.key, req.tx.id);
    r = store_.read_update(req.key, req.tx.vc, req.tx.has_read.bits(),
                           req.tx.has_read.any());
    locks_.unlock_shared(req.key, req.tx.id);
  }

  ReadReturn ret;
  ret.rpc_id = req.rpc_id;
  ret.found = r.found;
  ret.value = std::move(r.value);
  ret.version_vc = std::move(r.vc);
  ret.version_id = r.id;
  ret.version_origin = r.origin;
  ret.version_seq = r.seq;
  ret.latest_id = r.latest_id;
  if (fresh_reads()) {
    std::lock_guard<std::mutex> lock(site_mu_);
    ret.server_seq = site_vc_[id_];
  }
  ctx_.network->send(id_, req.reply_to, std::move(ret));
}

void MvNodeBase::on_prepare(const PrepareRequest& req) {
  // Alg. 5 lines 1-13.
  std::vector<Key> keys;
  keys.reserve(req.writes.size());
  for (const auto& w : req.writes) keys.push_back(w.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  VoteReply vote;
  vote.rpc_id = req.rpc_id;
  if (!locks_.lock_all_exclusive(keys, req.tx, ctx_.config.lock_timeout)) {
    vote.ok = false;
    vote.fail_reason = VoteFail::kLock;
  } else {
    bool valid = true;
    for (Key k : keys) {
      // Read-modify-write keys validate by version identity; blind writes
      // fall back to the clock rule of Alg. 5 lines 27-34.
      const net::ReadValidationEntry* observed = nullptr;
      for (const auto& r : req.reads) {
        if (r.key == k) {
          observed = &r;
          break;
        }
      }
      const bool ok = observed != nullptr
                          ? store_.validate_key_version(k, observed->version)
                          : store_.validate_key(k, req.tx_vc);
      if (!ok) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      locks_.unlock_all_exclusive(keys, req.tx);
      vote.ok = false;
      vote.fail_reason = VoteFail::kValidation;
    } else {
      vote.ok = true;
      if (track_antideps()) {
        // Alg. 5 lines 8-10: gather the read-only transactions that have an
        // anti-dependency with this writer.
        store_.collect_access_sets(keys, vote.collected_set);
      }
      std::lock_guard<std::mutex> lock(prepared_mu_);
      prepared_[req.tx] = std::move(keys);
    }
  }
  ctx_.network->send(id_, req.reply_to, std::move(vote));
}

void MvNodeBase::on_decide(DecideMessage&& m) {
  // Alg. 5 lines 14-26.
  if (!m.outcome) {
    release_prepared(m.tx);
    return;
  }
  std::lock_guard<std::mutex> lock(site_mu_);
  if (site_vc_[m.origin] + 1 == m.seq_no) {
    apply_decide_locked(m);
    drain_pending_locked(m.origin);
  } else if (site_vc_[m.origin] >= m.seq_no) {
    // Duplicate delivery; already applied.
  } else {
    // "wait until siteVC_i[j] = T.seqNo - 1" — buffered, not blocked.
    const NodeId origin = m.origin;
    const SeqNo seq = m.seq_no;
    PendingEvent ev;
    ev.is_decide = true;
    ev.decide = std::move(m);
    pending_[origin].emplace(seq, std::move(ev));
    pending_count_.fetch_add(1, std::memory_order_release);
    stats_.events_buffered.add();
  }
}

void MvNodeBase::apply_decide_locked(DecideMessage& m) {
  for (auto& w : m.writes) {
    store_.install(w.key, std::move(w.value), m.commit_vc, m.origin, m.seq_no,
                   m.collected_set);
  }
  stats_.versions_installed.add(m.writes.size());
  site_vc_[m.origin] = m.seq_no;  // Alg. 5 line 21
  release_prepared(m.tx);         // Alg. 5 line 22
  stats_.decides_applied.add();
}

void MvNodeBase::on_propagate(const PropagateMessage& m) {
  // Alg. 6 lines 1-4, generalized to ranges: the range is applicable once
  // siteVC has reached from_seq - 1 (no seq in (from_seq, to_seq] carries
  // a Decide for this node, so the whole range applies atomically).
  std::lock_guard<std::mutex> lock(site_mu_);
  if (m.to_seq <= site_vc_[m.origin]) return;  // duplicate
  if (m.from_seq <= site_vc_[m.origin] + 1) {
    site_vc_[m.origin] = m.to_seq;
    stats_.propagates_applied.add();
    drain_pending_locked(m.origin);
  } else {
    PendingEvent ev;
    ev.propagate = m;
    pending_[m.origin].emplace(m.from_seq, std::move(ev));
    pending_count_.fetch_add(1, std::memory_order_release);
    stats_.events_buffered.add();
  }
}

void MvNodeBase::drain_pending_locked(NodeId origin) {
  auto& queue = pending_[origin];
  for (;;) {
    auto it = queue.find(site_vc_[origin] + 1);
    if (it == queue.end()) return;
    PendingEvent ev = std::move(it->second);
    queue.erase(it);
    pending_count_.fetch_sub(1, std::memory_order_release);
    if (ev.is_decide) {
      apply_decide_locked(ev.decide);
    } else {
      site_vc_[origin] = ev.propagate.to_seq;
      stats_.propagates_applied.add();
    }
  }
}

void MvNodeBase::collect_ranges_locked(
    NodeId dest, std::vector<std::pair<NodeId, PropagateMessage>>& out) {
  SeqNo next = next_unsent_[dest];
  SeqNo range_start = 0;
  for (; next <= curr_seq_; ++next) {
    const CommitRecord& rec = commit_log_[next - commit_log_base_];
    const bool is_decide_seq =
        std::find(rec.decide_dests.begin(), rec.decide_dests.end(), dest) !=
        rec.decide_dests.end();
    if (is_decide_seq) {
      if (range_start != 0) {
        out.push_back({dest, PropagateMessage{id_, range_start, next - 1}});
        range_start = 0;
      }
    } else if (range_start == 0) {
      range_start = next;
    }
  }
  if (range_start != 0) {
    out.push_back({dest, PropagateMessage{id_, range_start, curr_seq_}});
  }
  next_unsent_[dest] = curr_seq_ + 1;
}

void MvNodeBase::prune_commit_log_locked() {
  SeqNo min_unsent = curr_seq_ + 1;
  for (NodeId d = 0; d < ctx_.num_nodes; ++d) {
    if (d == id_) continue;
    min_unsent = std::min(min_unsent, next_unsent_[d]);
  }
  while (commit_log_base_ < min_unsent && !commit_log_.empty()) {
    commit_log_.pop_front();
    ++commit_log_base_;
  }
}

void MvNodeBase::flush_timer_tick() {
  flush_propagation();
  ctx_.network->schedule(ctx_.config.propagate_flush_interval,
                         [this] { flush_timer_tick(); });
}

void MvNodeBase::flush_propagation() {
  std::vector<std::pair<NodeId, PropagateMessage>> flushes;
  {
    std::lock_guard<std::mutex> lock(site_mu_);
    for (NodeId d = 0; d < ctx_.num_nodes; ++d) {
      if (d == id_) continue;
      collect_ranges_locked(d, flushes);
    }
    prune_commit_log_locked();
  }
  for (auto& [dest, msg] : flushes) {
    ctx_.network->send(id_, dest, msg);
  }
}

void MvNodeBase::on_remove(const RemoveMessage& m) {
  // Alg. 6 lines 5-10: drop the finished read-only transaction's id from
  // every version-access-set on this node — its own reads via the batched
  // key list, stamped copies via the reverse index.
  store_.remove_tx(m.tx, m.keys);
  stats_.removes_processed.add();
}

void MvNodeBase::release_prepared(TxId tx) {
  std::vector<Key> keys;
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    auto it = prepared_.find(tx);
    if (it == prepared_.end()) return;
    keys = std::move(it->second);
    prepared_.erase(it);
  }
  locks_.unlock_all_exclusive(keys, tx);
}

VectorClock MvNodeBase::site_vc() const {
  std::lock_guard<std::mutex> lock(site_mu_);
  return site_vc_;
}

SeqNo MvNodeBase::curr_seq() const {
  std::lock_guard<std::mutex> lock(site_mu_);
  return curr_seq_;
}

}  // namespace fwkv
