#include "core/mv_node.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "net/network.hpp"

namespace fwkv {

using net::DecideMessage;
using net::Message;
using net::PrepareRequest;
using net::PropagateMessage;
using net::ReadRequest;
using net::ReadReturn;
using net::RemoveMessage;
using net::VoteFail;
using net::VoteReply;
using net::WriteEntry;

MvNodeBase::MvNodeBase(NodeId id, ClusterContext& ctx)
    : KvNode(id, ctx),
      site_vc_(ctx.num_nodes),
      pending_(ctx.num_nodes),
      gap_armed_(ctx.num_nodes, 0),
      next_unsent_(ctx.num_nodes, 1) {
  // Kick off the periodic propagation flush (Walter propagates outside the
  // transaction critical path). The task re-arms itself on the timer.
  ctx_.network->schedule(ctx_.config.propagate_flush_interval,
                         [this] { flush_timer_tick(); });
}

// ---------------------------------------------------------------------------
// Client-side operations (run on the client's thread, co-located with us).
// ---------------------------------------------------------------------------

void MvNodeBase::begin(Transaction& tx) {
  // Alg. 1: T.VC <- siteVC_i; hasRead[*] <- false.
  std::lock_guard<std::mutex> lock(site_mu_);
  tx.vc() = site_vc_;
  tx.has_read().reset();
}

net::TxDescriptor MvNodeBase::descriptor(const Transaction& tx) const {
  net::TxDescriptor d;
  d.id = tx.id();
  d.read_only = tx.read_only();
  d.vc = tx.vc();
  d.has_read = tx.has_read();
  return d;
}

std::optional<Value> MvNodeBase::read(Transaction& tx, Key key) {
  // Alg. 2 lines 2-4: read-your-writes from the private write buffer.
  if (auto written = tx.written_value(key)) return written;
  // Client-side repeatable-read cache: a re-read must return the value this
  // transaction already observed (and must not re-enter the version-access
  // -set logic with its own id already present).
  if (auto cached = tx.cached_read(key)) return cached;

  const NodeId target = ctx_.mapper->node_for(key);  // Alg. 2 line 5
  ReadRequest req;
  req.tx = descriptor(tx);
  req.key = key;
  // Reads are side-effect-free on the transaction's snapshot until the
  // reply is processed, so a lost request/reply is simply retried. On a
  // reliable network the first attempt always answers.
  const int attempts = ctx_.network->faults_active() ? 3 : 1;
  std::optional<Message> reply;
  for (int a = 0; a < attempts && !reply.has_value(); ++a) {
    auto call = attempts == 1
                    ? ctx_.network->send_request(id_, target, std::move(req))
                    : ctx_.network->send_request(id_, target, req);
    reply = call.await(ctx_.config.rpc_timeout);
    if (!reply.has_value()) ctx_.network->cancel_rpc(call);
  }
  if (!reply.has_value()) return std::nullopt;  // unreachable in practice
  auto& rr = std::get<ReadReturn>(*reply);
  if (!rr.found) return std::nullopt;

  if (fresh_reads()) {
    // Alg. 2 lines 8-9: freeze this site's snapshot and merge the version's
    // commit clock into the reading snapshot; the entry for the contacted
    // site advances to the site's current sequence (Fig. 2: "T1 also
    // updates T1.VC[2] to the latest timestamp of N2"). Walter's snapshot
    // is fixed at begin and never advances (§3.2).
    tx.has_read().set(target);
    tx.vc().merge(rr.version_vc);
    if (rr.server_seq > tx.vc()[target]) tx.vc()[target] = rr.server_seq;
  }
  if (tx.read_only() && track_antideps()) {
    // Alg. 2 lines 10-12: buffer (site, key) so commit can flush one
    // batched Remove per contacted site.
    tx.record_read_key(target, key);
  }
  if (!tx.read_only()) {
    // Remember the version observed so that, if this key is later written,
    // prepare can certify it "has not been overwritten meanwhile" (§4.4)
    // by version identity. The origin-entry clock comparison alone (Alg. 5
    // line 29) is defeated when a later read merges an unrelated commit's
    // clock into T.VC (Alg. 2 line 9) that covers the conflicting writer's
    // entry — a read-modify-write could then overwrite a version it never
    // saw. The id check closes that hole; blind writes still use the
    // clock rule.
    tx.record_validation(key, rr.version_id);
  }
  tx.record_read_freshness(rr.version_id, rr.latest_id);
  tx.cache_read(key, rr.value);
  return rr.value;
}

bool MvNodeBase::commit(Transaction& tx) {
  // Alg. 4 lines 2-8: read-only commit is a local decision plus async
  // cleanup of the transaction's visible-read traces.
  if (tx.write_set().empty()) {
    if (track_antideps()) {
      // One Remove per contacted site, carrying the transaction's batched
      // registration buffer for that site: the handler deregisters the
      // visible-read traces through the key list and the reverse index
      // covers ids stamped elsewhere by committing writers (Alg. 6 l. 5-10).
      for (auto& [site, keys] : tx.registrations_by_site()) {
        ctx_.network->send(id_, site, RemoveMessage{tx.id(), std::move(keys)});
      }
    }
    tx.mark_committed();
    stats_.ro_commits.add();
    return true;
  }

  // Alg. 4 lines 9-21: 2PC over the preferred sites of the write-set.
  std::map<NodeId, std::vector<WriteEntry>> by_site;
  for (const auto& [key, value] : tx.write_set()) {
    by_site[ctx_.mapper->node_for(key)].push_back(WriteEntry{key, value});
  }

  const bool chaos = ctx_.network->faults_active();
  std::vector<net::RpcCall> calls;
  std::vector<NodeId> participants;
  std::vector<PrepareRequest> preps;  // retained for retries under faults
  calls.reserve(by_site.size());
  for (auto& [site, writes] : by_site) {
    PrepareRequest prep;
    prep.tx = tx.id();
    prep.tx_vc = tx.vc();
    prep.writes = writes;
    // Attach the observed version of every written key this transaction
    // also read (read-modify-write); the participant validates identity.
    for (const auto& w : writes) {
      auto it = tx.validation_set().find(w.key);
      if (it != tx.validation_set().end()) {
        prep.reads.push_back(net::ReadValidationEntry{w.key, it->second});
      }
    }
    participants.push_back(site);
    if (chaos) preps.push_back(prep);
    calls.push_back(ctx_.network->send_request(id_, site, std::move(prep)));
  }

  std::vector<std::optional<VoteReply>> votes(calls.size());
  if (!chaos) {
    for (std::size_t i = 0; i < calls.size(); ++i) {
      if (auto reply = calls[i].await(ctx_.config.rpc_timeout)) {
        votes[i] = std::get<VoteReply>(std::move(*reply));
      }
      // keep draining votes so every participant gets a Decide
    }
  } else {
    // Bounded exponential backoff: attempt k waits prepare_timeout * 2^k,
    // then re-sends the Prepare to every participant still missing a vote.
    // Participants deduplicate by tx id and re-vote idempotently, so a
    // retry racing its original is harmless. After the last attempt the
    // transaction timeout-aborts and the abort Decide below releases any
    // participant locks.
    for (std::uint32_t attempt = 0; attempt < ctx_.config.prepare_attempts;
         ++attempt) {
      const auto wait = ctx_.config.prepare_timeout * (1u << attempt);
      bool all = true;
      for (std::size_t i = 0; i < calls.size(); ++i) {
        if (votes[i].has_value()) continue;
        if (auto reply = calls[i].await(wait)) {
          votes[i] = std::get<VoteReply>(std::move(*reply));
        } else {
          ctx_.network->cancel_rpc(calls[i]);
          all = false;
        }
      }
      if (all || attempt + 1 == ctx_.config.prepare_attempts) break;
      for (std::size_t i = 0; i < calls.size(); ++i) {
        if (votes[i].has_value()) continue;
        stats_.prepare_retries.add();
        calls[i] = ctx_.network->send_request(id_, participants[i], preps[i]);
      }
    }
  }

  bool outcome = true;
  AbortReason reason = AbortReason::kNone;
  std::vector<TxId> collected;
  for (const auto& v : votes) {
    if (!v.has_value()) {
      outcome = false;
      if (reason == AbortReason::kNone) reason = AbortReason::kVoteTimeout;
      continue;
    }
    const VoteReply& vote = *v;
    if (!vote.ok) {
      outcome = false;
      if (reason == AbortReason::kNone) {
        reason = vote.fail_reason == VoteFail::kLock
                     ? AbortReason::kLockTimeout
                     : AbortReason::kValidation;
      }
    } else {
      collected.insert(collected.end(), vote.collected_set.begin(),
                       vote.collected_set.end());
    }
  }

  SeqNo seq = 0;
  VectorClock commit_vc;
  std::vector<std::pair<NodeId, PropagateMessage>> flushes;
  if (outcome) {
    // Alg. 4 line 19 + dedupe: T.collectedSet is a set.
    std::sort(collected.begin(), collected.end());
    collected.erase(std::unique(collected.begin(), collected.end()),
                    collected.end());
    if (track_antideps()) {
      stats_.collected_set_size.record(collected.size());  // Fig. 6 metric
    }
    // Alg. 4 lines 22-25: take the next local sequence number, finalize the
    // commit vector clock, and record who receives this seq as a Decide.
    std::lock_guard<std::mutex> lock(site_mu_);
    seq = ++curr_seq_;
    commit_vc = site_vc_;
    commit_vc[id_] = seq;
    CommitRecord rec;
    rec.decide_dests = participants;
    if (by_site.count(id_) == 0) rec.decide_dests.push_back(id_);
    commit_log_.push_back(std::move(rec));
    // Flush pending Propagate ranges to the participants right now: their
    // Decide application (Alg. 5 line 16) must not stall on a batch that
    // is still waiting for the periodic flush.
    for (NodeId p : participants) {
      if (p != id_) collect_ranges_locked(p, flushes);
    }
  }
  for (auto& [dest, msg] : flushes) {
    ctx_.network->send(id_, dest, msg);
  }

  // Alg. 4 line 26: Decide to the participants plus ourselves (the
  // coordinator must advance its own siteVC entry in seq order too).
  bool self_is_participant = by_site.count(id_) > 0;
  auto make_decide = [&](NodeId site) {
    DecideMessage d;
    d.tx = tx.id();
    d.outcome = outcome;
    d.origin = id_;
    d.seq_no = seq;
    d.commit_vc = commit_vc;
    d.writes = by_site[site];
    d.collected_set = collected;
    return d;
  };
  if (chaos && outcome) {
    // Retain the per-participant Decide payloads on the commit record so a
    // lost Decide can be replayed when the participant gap-requests it.
    std::lock_guard<std::mutex> lock(site_mu_);
    if (seq >= commit_log_base_) {
      auto& rec = commit_log_[seq - commit_log_base_];
      for (NodeId site : participants) {
        if (site != id_) rec.decide_payloads.emplace_back(site, make_decide(site));
      }
    }
  }
  if (!chaos) {
    for (NodeId site : participants) {
      ctx_.network->send(id_, site, make_decide(site));
    }
  } else {
    // Acked decides with bounded-backoff retries: a lost commit Decide
    // would leave the participant's write locks held until gap repair; a
    // lost abort Decide would leave them held forever (an aborted tx has no
    // seq, so no Propagate or ResendRequest ever covers it). The ack means
    // "received" — application may still be buffered behind a seq gap.
    std::vector<NodeId> unacked;
    std::vector<net::RpcCall> acks;
    for (NodeId site : participants) {
      if (site == id_) {
        ctx_.network->send(id_, site, make_decide(site));  // loopback
        continue;
      }
      unacked.push_back(site);
      acks.push_back(ctx_.network->send_request(id_, site, make_decide(site)));
    }
    for (std::uint32_t attempt = 0;
         attempt < ctx_.config.decide_attempts && !unacked.empty();
         ++attempt) {
      const auto wait = ctx_.config.decide_ack_timeout * (1u << attempt);
      std::vector<NodeId> still;
      std::vector<net::RpcCall> still_calls;
      for (std::size_t i = 0; i < acks.size(); ++i) {
        if (acks[i].await(wait).has_value()) continue;
        ctx_.network->cancel_rpc(acks[i]);
        if (attempt + 1 < ctx_.config.decide_attempts) {
          stats_.decide_retries.add();
          still.push_back(unacked[i]);
          still_calls.push_back(
              ctx_.network->send_request(id_, unacked[i], make_decide(unacked[i])));
        }
      }
      unacked = std::move(still);
      acks = std::move(still_calls);
    }
  }
  if (!self_is_participant && outcome) {
    DecideMessage d;
    d.tx = tx.id();
    d.outcome = true;
    d.origin = id_;
    d.seq_no = seq;
    d.commit_vc = commit_vc;
    ctx_.network->send(id_, id_, std::move(d));
  }

  if (outcome) {
    // Alg. 4 line 27: the asynchronous Propagate to all other nodes is
    // batched; the periodic flush (flush_timer_tick) carries it.
    tx.mark_committed();
    stats_.update_commits.add();
    return true;
  }

  tx.mark_aborted(reason);
  switch (reason) {
    case AbortReason::kLockTimeout:
      stats_.aborts_lock.add();
      break;
    case AbortReason::kValidation:
      stats_.aborts_validation.add();
      break;
    default:
      stats_.aborts_vote_timeout.add();
      break;
  }
  return false;
}

void MvNodeBase::load(Key key, Value value) {
  store_.load(key, std::move(value), ctx_.num_nodes);
}

// ---------------------------------------------------------------------------
// Server-side message handlers.
// ---------------------------------------------------------------------------

void MvNodeBase::handle_message(Message msg, NodeId /*from*/) {
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ReadRequest>) {
          on_read_request(m);
        } else if constexpr (std::is_same_v<T, PrepareRequest>) {
          on_prepare(m);
        } else if constexpr (std::is_same_v<T, DecideMessage>) {
          on_decide(std::move(m));
        } else if constexpr (std::is_same_v<T, PropagateMessage>) {
          on_propagate(m);
        } else if constexpr (std::is_same_v<T, RemoveMessage>) {
          on_remove(m);
        } else if constexpr (std::is_same_v<T, net::ResendRequest>) {
          on_resend_request(m);
        } else {
          assert(false && "replies are routed by the network, not here");
        }
      },
      std::move(msg));
}

std::size_t MvNodeBase::pending_work() const {
  return pending_count_.load(std::memory_order_acquire);
}

void MvNodeBase::read_lock_shared(Key key, TxId tx) {
  // Reads never give up: they wait out concurrent prepare->decide windows.
  // The data/control lane split guarantees the Decide that releases the
  // exclusive lock can always run.
  while (!locks_.lock_shared(key, tx, ctx_.config.lock_timeout)) {
  }
}

void MvNodeBase::on_read_request(const ReadRequest& req) {
  stats_.reads_served.add();
  store::ReadResult r;
  if (!fresh_reads()) {
    // Walter: no read/update distinction and no access-set maintenance.
    // The shared lock is still taken: a participant holds its write locks
    // from prepare until the decide applies, so a reader whose snapshot
    // already covers that commit waits for the installation instead of
    // being served a torn (pre-commit) version of the key.
    read_lock_shared(req.key, req.tx.id);
    r = store_.read_walter(req.key, req.tx.vc);
    locks_.unlock_shared(req.key, req.tx.id);
  } else if (req.tx.read_only) {
    // Alg. 3 lines 2-10 under a shared lock (read handlers exclude update
    // commit handlers but run concurrently with each other).
    read_lock_shared(req.key, req.tx.id);
    r = store_.read_read_only(req.key, req.tx.vc, req.tx.has_read.bits(),
                              req.tx.id);
    locks_.unlock_shared(req.key, req.tx.id);
  } else {
    // Alg. 3 lines 11-18; the conservative exclusion applies only once the
    // snapshot is partially fixed (first reads return the latest version).
    read_lock_shared(req.key, req.tx.id);
    r = store_.read_update(req.key, req.tx.vc, req.tx.has_read.bits(),
                           req.tx.has_read.any());
    locks_.unlock_shared(req.key, req.tx.id);
  }

  ReadReturn ret;
  ret.rpc_id = req.rpc_id;
  ret.found = r.found;
  ret.value = std::move(r.value);
  ret.version_vc = std::move(r.vc);
  ret.version_id = r.id;
  ret.version_origin = r.origin;
  ret.version_seq = r.seq;
  ret.latest_id = r.latest_id;
  if (fresh_reads()) {
    std::lock_guard<std::mutex> lock(site_mu_);
    ret.server_seq = site_vc_[id_];
  }
  ctx_.network->send(id_, req.reply_to, std::move(ret));
}

void MvNodeBase::on_prepare(const PrepareRequest& req) {
  // Redelivery dedup, keyed by tx id (coordinator retries, duplicated
  // deliveries, and a pause-deferred abort Decide overtaking its Prepare
  // must not double-lock or re-lock). Only live once deliveries may have
  // been disturbed: on a reliable network Prepares are never redelivered,
  // and a long-lived decided set would misread a recycled tx id (a fresh
  // session restarting its seq counter) as a stale retransmission.
  bool revote = false;
  std::vector<Key> held_keys;
  if (ctx_.network->deliveries_disturbed()) {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    if (decided_.count(req.tx) != 0) {
      // Stale retransmission: the decision already came and went. Locking
      // now would hold the keys forever (nothing will decide this tx
      // again), so drop it; no coordinator is waiting for this vote.
      stats_.dup_drops.add();
      return;
    }
    if (preparing_.count(req.tx) != 0) {
      // A concurrent duplicate is mid-prepare on another handler thread;
      // that handler's vote (or the coordinator's next retry) answers.
      stats_.dup_drops.add();
      return;
    }
    auto it = prepared_.find(req.tx);
    if (it != prepared_.end()) {
      revote = true;  // already voted yes, locks still held: re-vote
      held_keys = it->second;
      stats_.dup_drops.add();
    } else {
      preparing_.insert(req.tx);
    }
  }
  if (revote) {
    VoteReply vote;
    vote.rpc_id = req.rpc_id;
    vote.ok = true;
    if (track_antideps()) {
      store_.collect_access_sets(held_keys, vote.collected_set);
    }
    ctx_.network->send(id_, req.reply_to, std::move(vote));
    return;
  }

  // Alg. 5 lines 1-13.
  std::vector<Key> keys;
  keys.reserve(req.writes.size());
  for (const auto& w : req.writes) keys.push_back(w.key);
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

  VoteReply vote;
  vote.rpc_id = req.rpc_id;
  if (!locks_.lock_all_exclusive(keys, req.tx, ctx_.config.lock_timeout)) {
    vote.ok = false;
    vote.fail_reason = VoteFail::kLock;
    std::lock_guard<std::mutex> lock(prepared_mu_);
    preparing_.erase(req.tx);
  } else {
    bool valid = true;
    for (Key k : keys) {
      // Read-modify-write keys validate by version identity; blind writes
      // fall back to the clock rule of Alg. 5 lines 27-34.
      const net::ReadValidationEntry* observed = nullptr;
      for (const auto& r : req.reads) {
        if (r.key == k) {
          observed = &r;
          break;
        }
      }
      const bool ok = observed != nullptr
                          ? store_.validate_key_version(k, observed->version)
                          : store_.validate_key(k, req.tx_vc);
      if (!ok) {
        valid = false;
        break;
      }
    }
    if (!valid) {
      locks_.unlock_all_exclusive(keys, req.tx);
      vote.ok = false;
      vote.fail_reason = VoteFail::kValidation;
      std::lock_guard<std::mutex> lock(prepared_mu_);
      preparing_.erase(req.tx);
    } else {
      vote.ok = true;
      if (track_antideps()) {
        // Alg. 5 lines 8-10: gather the read-only transactions that have an
        // anti-dependency with this writer.
        store_.collect_access_sets(keys, vote.collected_set);
      }
      bool decided_meanwhile = false;
      {
        std::lock_guard<std::mutex> lock(prepared_mu_);
        preparing_.erase(req.tx);
        if (decided_.count(req.tx) != 0) {
          decided_meanwhile = true;
        } else {
          prepared_[req.tx] = std::move(keys);
        }
      }
      if (decided_meanwhile) {
        // A (necessarily abort) Decide raced past while we validated:
        // release immediately — nothing will decide this tx again.
        locks_.unlock_all_exclusive(keys, req.tx);
        vote.ok = false;
        vote.fail_reason = VoteFail::kLock;
      }
    }
  }
  ctx_.network->send(id_, req.reply_to, std::move(vote));
}

void MvNodeBase::on_decide(DecideMessage&& m) {
  // Acknowledge receipt when the coordinator asked for it (fault-injection
  // runs): application may still be buffered behind a seq gap, but gap
  // repair guarantees it eventually happens, so "received" is enough for
  // the coordinator to stop retrying.
  if (m.rpc_id != 0) {
    ctx_.network->send(id_, m.reply_to, net::DecideAck{m.rpc_id});
  }
  // Alg. 5 lines 14-26.
  if (!m.outcome) {
    release_prepared(m.tx);
    return;
  }
  std::lock_guard<std::mutex> lock(site_mu_);
  if (site_vc_[m.origin] + 1 == m.seq_no) {
    apply_decide_locked(m);
    drain_pending_locked(m.origin);
  } else if (site_vc_[m.origin] >= m.seq_no) {
    stats_.dup_drops.add();  // redelivery; already applied
  } else {
    // "wait until siteVC_i[j] = T.seqNo - 1" — buffered, not blocked.
    const NodeId origin = m.origin;
    const SeqNo seq = m.seq_no;
    PendingEvent ev;
    ev.is_decide = true;
    ev.decide = std::move(m);
    const bool inserted =
        pending_[origin].emplace(seq, std::move(ev)).second;
    if (inserted) {
      pending_count_.fetch_add(1, std::memory_order_release);
      stats_.events_buffered.add();
      if (ctx_.network->faults_active()) arm_gap_watch_locked(origin);
    } else {
      stats_.dup_drops.add();  // redelivery of an already-buffered decide
    }
  }
}

void MvNodeBase::apply_decide_locked(DecideMessage& m) {
  for (auto& w : m.writes) {
    store_.install(w.key, std::move(w.value), m.commit_vc, m.origin, m.seq_no,
                   m.collected_set);
  }
  stats_.versions_installed.add(m.writes.size());
  site_vc_[m.origin] = m.seq_no;  // Alg. 5 line 21
  release_prepared(m.tx);         // Alg. 5 line 22
  stats_.decides_applied.add();
}

void MvNodeBase::on_propagate(const PropagateMessage& m) {
  // Alg. 6 lines 1-4, generalized to ranges: the range is applicable once
  // siteVC has reached from_seq - 1 (no seq in (from_seq, to_seq] carries
  // a Decide for this node, so the whole range applies atomically).
  std::lock_guard<std::mutex> lock(site_mu_);
  if (m.to_seq <= site_vc_[m.origin]) {
    stats_.dup_drops.add();  // redelivery; fully covered already
    return;
  }
  if (m.from_seq <= site_vc_[m.origin] + 1) {
    site_vc_[m.origin] = m.to_seq;
    stats_.propagates_applied.add();
    drain_pending_locked(m.origin);
  } else {
    PendingEvent ev;
    ev.propagate = m;
    auto [it, inserted] = pending_[m.origin].emplace(m.from_seq, std::move(ev));
    if (inserted) {
      pending_count_.fetch_add(1, std::memory_order_release);
      stats_.events_buffered.add();
      if (ctx_.network->faults_active()) arm_gap_watch_locked(m.origin);
    } else if (!it->second.is_decide &&
               m.to_seq > it->second.propagate.to_seq) {
      // A replayed range starting at the same seq but reaching further
      // (the flush advanced before the replay): keep the longer range.
      it->second.propagate.to_seq = m.to_seq;
    } else {
      stats_.dup_drops.add();
    }
  }
}

void MvNodeBase::drain_pending_locked(NodeId origin) {
  auto& queue = pending_[origin];
  for (;;) {
    // Head entries at or below the cursor are stale redeliveries buffered
    // before the seq was covered by another path (gap replay); discard
    // them instead of leaving them to wedge quiescence.
    auto it = queue.begin();
    if (it == queue.end() || it->first > site_vc_[origin] + 1) return;
    const SeqNo at = it->first;
    PendingEvent ev = std::move(it->second);
    queue.erase(it);
    pending_count_.fetch_sub(1, std::memory_order_release);
    if (ev.is_decide) {
      if (at == site_vc_[origin] + 1) {
        apply_decide_locked(ev.decide);
      } else {
        stats_.dup_drops.add();
      }
    } else if (ev.propagate.to_seq > site_vc_[origin]) {
      site_vc_[origin] = ev.propagate.to_seq;
      stats_.propagates_applied.add();
    } else {
      stats_.dup_drops.add();
    }
  }
}

void MvNodeBase::collect_ranges_locked(
    NodeId dest, std::vector<std::pair<NodeId, PropagateMessage>>& out) {
  SeqNo next = next_unsent_[dest];
  SeqNo range_start = 0;
  for (; next <= curr_seq_; ++next) {
    const CommitRecord& rec = commit_log_[next - commit_log_base_];
    const bool is_decide_seq =
        std::find(rec.decide_dests.begin(), rec.decide_dests.end(), dest) !=
        rec.decide_dests.end();
    if (is_decide_seq) {
      if (range_start != 0) {
        out.push_back({dest, PropagateMessage{id_, range_start, next - 1}});
        range_start = 0;
      }
    } else if (range_start == 0) {
      range_start = next;
    }
  }
  if (range_start != 0) {
    out.push_back({dest, PropagateMessage{id_, range_start, curr_seq_}});
  }
  next_unsent_[dest] = curr_seq_ + 1;
}

void MvNodeBase::prune_commit_log_locked() {
  SeqNo min_unsent = curr_seq_ + 1;
  for (NodeId d = 0; d < ctx_.num_nodes; ++d) {
    if (d == id_) continue;
    min_unsent = std::min(min_unsent, next_unsent_[d]);
  }
  if (ctx_.network->faults_active()) {
    // "Sent" does not mean "delivered" under faults: keep a trailing
    // horizon of records so ResendRequests can be served.
    const SeqNo floor =
        curr_seq_ >= kResendHorizon ? curr_seq_ - kResendHorizon + 1 : 1;
    min_unsent = std::min(min_unsent, floor);
  }
  while (commit_log_base_ < min_unsent && !commit_log_.empty()) {
    commit_log_.pop_front();
    ++commit_log_base_;
  }
}

void MvNodeBase::flush_timer_tick() {
  flush_propagation();
  ctx_.network->schedule(ctx_.config.propagate_flush_interval,
                         [this] { flush_timer_tick(); });
}

void MvNodeBase::flush_propagation() {
  std::vector<std::pair<NodeId, PropagateMessage>> flushes;
  {
    std::lock_guard<std::mutex> lock(site_mu_);
    for (NodeId d = 0; d < ctx_.num_nodes; ++d) {
      if (d == id_) continue;
      collect_ranges_locked(d, flushes);
    }
    prune_commit_log_locked();
  }
  for (auto& [dest, msg] : flushes) {
    ctx_.network->send(id_, dest, msg);
  }
}

void MvNodeBase::arm_gap_watch_locked(NodeId origin) {
  if (gap_armed_[origin]) return;
  gap_armed_[origin] = 1;
  ctx_.network->schedule(ctx_.config.gap_request_delay,
                         [this, origin] { gap_check(origin); });
}

void MvNodeBase::gap_check(NodeId origin) {
  SeqNo from = 0;
  SeqNo to = 0;
  {
    std::lock_guard<std::mutex> lock(site_mu_);
    gap_armed_[origin] = 0;
    const auto& queue = pending_[origin];
    if (queue.empty()) return;  // gap closed on its own
    from = site_vc_[origin] + 1;
    to = queue.begin()->first - 1;
    if (to < from) return;
    // Re-arm before requesting: the request or its replay can be lost too.
    arm_gap_watch_locked(origin);
  }
  stats_.gap_requests.add();
  ctx_.network->send(id_, origin, net::ResendRequest{id_, from, to});
}

void MvNodeBase::on_resend_request(const net::ResendRequest& m) {
  // Replay the requested seq range from the commit log: retained Decide
  // payloads for seqs that were decided to the requester, recomputed
  // Propagate ranges for the rest. Redelivery is safe — application
  // deduplicates by (origin, seq).
  std::vector<Message> outs;
  {
    std::lock_guard<std::mutex> lock(site_mu_);
    SeqNo from = m.from_seq;
    if (from < commit_log_base_) {
      stats_.resend_misses.add();  // pruned past the resend horizon
      from = commit_log_base_;
    }
    const SeqNo to = std::min(m.to_seq, curr_seq_);
    SeqNo range_start = 0;
    for (SeqNo s = from; s <= to; ++s) {
      const CommitRecord& rec = commit_log_[s - commit_log_base_];
      const bool is_decide_seq =
          std::find(rec.decide_dests.begin(), rec.decide_dests.end(),
                    m.requester) != rec.decide_dests.end();
      if (is_decide_seq) {
        if (range_start != 0) {
          outs.push_back(PropagateMessage{id_, range_start, s - 1});
          range_start = 0;
        }
        const DecideMessage* payload = nullptr;
        for (const auto& [dest, d] : rec.decide_payloads) {
          if (dest == m.requester) {
            payload = &d;
            break;
          }
        }
        if (payload != nullptr) {
          DecideMessage copy = *payload;
          copy.rpc_id = 0;  // replay is fire-and-forget, no ack expected
          outs.push_back(std::move(copy));
        } else {
          stats_.resend_misses.add();  // committed before faults were active
        }
      } else if (range_start == 0) {
        range_start = s;
      }
    }
    if (range_start != 0) {
      outs.push_back(PropagateMessage{id_, range_start, to});
    }
  }
  stats_.gap_resends.add(outs.size());
  for (auto& msg : outs) {
    ctx_.network->send(id_, m.requester, std::move(msg));
  }
}

void MvNodeBase::on_remove(const RemoveMessage& m) {
  // Alg. 6 lines 5-10: drop the finished read-only transaction's id from
  // every version-access-set on this node — its own reads via the batched
  // key list, stamped copies via the reverse index.
  store_.remove_tx(m.tx, m.keys);
  stats_.removes_processed.add();
}

void MvNodeBase::note_decided_locked(TxId tx) {
  // Paired with on_prepare's dedup gate: only track decisions once
  // deliveries may have been disturbed (see there about recycled tx ids).
  if (!ctx_.network->deliveries_disturbed()) return;
  if (!decided_.insert(tx).second) return;
  decided_fifo_.push_back(tx);
  if (decided_fifo_.size() > kDecidedHorizon) {
    decided_.erase(decided_fifo_.front());
    decided_fifo_.pop_front();
  }
}

void MvNodeBase::release_prepared(TxId tx) {
  std::vector<Key> keys;
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    // Remember the decision first: a stale retransmitted Prepare for this
    // tx must never re-lock keys after this point (on_prepare checks
    // decided_ both before locking and before publishing to prepared_).
    note_decided_locked(tx);
    auto it = prepared_.find(tx);
    if (it == prepared_.end()) return;
    keys = std::move(it->second);
    prepared_.erase(it);
  }
  locks_.unlock_all_exclusive(keys, tx);
}

VectorClock MvNodeBase::site_vc() const {
  std::lock_guard<std::mutex> lock(site_mu_);
  return site_vc_;
}

SeqNo MvNodeBase::curr_seq() const {
  std::lock_guard<std::mutex> lock(site_mu_);
  return curr_seq_;
}

}  // namespace fwkv
