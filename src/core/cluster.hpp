// Public entry point: a simulated FW-KV / Walter / 2PC-baseline cluster.
//
//   fwkv::ClusterConfig cfg;
//   cfg.num_nodes = 5;
//   cfg.protocol = fwkv::Protocol::kFwKv;
//   fwkv::Cluster cluster(cfg);
//   cluster.load(42, "hello");
//   auto session = cluster.make_session(/*node=*/0, /*client=*/0);
//   auto tx = session.begin();
//   session.write(tx, 42, "world");
//   session.commit(tx);
#pragma once

#include <chrono>
#include <memory>
#include <vector>

#include "core/kv_node.hpp"
#include "core/protocol.hpp"
#include "net/network.hpp"

namespace fwkv {

class Session;

struct ClusterConfig {
  std::uint32_t num_nodes = 4;
  Protocol protocol = Protocol::kFwKv;
  net::NetConfig net;
  ProtocolConfig protocol_config;
  /// Virtual nodes per physical node on the default consistent-hash ring.
  std::uint32_t ring_vnodes = 128;
  /// Custom key placement (e.g. TPC-C's warehouse-home placement). When
  /// null a ConsistentHashRing over num_nodes is used.
  std::shared_ptr<const KeyMapper> mapper;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  std::uint32_t num_nodes() const { return config_.num_nodes; }
  Protocol protocol() const { return config_.protocol; }
  const ClusterConfig& config() const { return config_; }

  /// Preferred site of `key` (§3.1), identical on every node.
  NodeId node_for_key(Key key) const { return mapper_->node_for(key); }

  /// Pre-run bulk load: installs the initial version on the preferred node.
  void load(Key key, Value value);

  /// A client handle bound to `node` (§2.3: clients begin transactions on
  /// the co-located node). `client_id` must be unique per (node, client).
  Session make_session(NodeId node, std::uint32_t client_id);

  KvNode& node(NodeId id) { return *nodes_[id]; }
  const KvNode& node(NodeId id) const { return *nodes_[id]; }
  net::SimNetwork& network() { return *network_; }
  const KeyMapper& mapper() const { return *mapper_; }

  /// Wait until no message is in flight and no node buffers pending events.
  bool quiesce(
      std::chrono::nanoseconds timeout = std::chrono::seconds(10));

  /// Sum of all nodes' statistics.
  NodeStats::Snapshot aggregate_stats() const;
  void reset_stats();

 private:
  ClusterConfig config_;
  std::shared_ptr<const KeyMapper> mapper_;
  std::unique_ptr<net::SimNetwork> network_;
  ClusterContext ctx_;
  std::vector<std::unique_ptr<KvNode>> nodes_;
};

}  // namespace fwkv
