// Per-node protocol statistics. Client-visible run metrics (throughput,
// latency, abort rate) are aggregated by the runtime driver; these counters
// capture node-internal behaviour the paper plots (Fig. 6 anti-dependency
// sizes) or discusses (message handling, pending queues).
#pragma once

#include "common/histogram.hpp"

namespace fwkv {

struct NodeStats {
  // Commit outcomes recorded at the coordinator.
  Counter ro_commits;
  Counter update_commits;
  Counter aborts_lock;
  Counter aborts_validation;
  Counter aborts_vote_timeout;

  // Fig. 6: size of T.collectedSet after merging participant votes, per
  // update transaction that passed prepare.
  Accumulator collected_set_size;

  // Server-side activity.
  Counter reads_served;
  Counter versions_installed;
  Counter propagates_applied;
  Counter removes_processed;
  Counter decides_applied;

  // In-order application buffering (how often Decide/Propagate had to wait
  // for a predecessor — grows when propagation is delayed).
  Counter events_buffered;

  // Fault recovery (all zero on a reliable network).
  Counter prepare_retries;   // Prepare re-sent after a per-attempt timeout
  Counter decide_retries;    // acked Decide re-sent after a missing ack
  Counter dup_drops;         // redelivered messages discarded by dedup
  Counter gap_requests;      // ResendRequests sent for missing seq ranges
  Counter gap_resends;       // commit events replayed for a ResendRequest
  Counter resend_misses;     // requested seqs already pruned from the log

  std::uint64_t total_commits() const {
    return ro_commits.get() + update_commits.get();
  }
  std::uint64_t total_aborts() const {
    return aborts_lock.get() + aborts_validation.get() +
           aborts_vote_timeout.get();
  }

  struct Snapshot;
  Snapshot snapshot() const;

  void reset() {
    ro_commits.reset();
    update_commits.reset();
    aborts_lock.reset();
    aborts_validation.reset();
    aborts_vote_timeout.reset();
    collected_set_size.reset();
    reads_served.reset();
    versions_installed.reset();
    propagates_applied.reset();
    removes_processed.reset();
    decides_applied.reset();
    events_buffered.reset();
    prepare_retries.reset();
    decide_retries.reset();
    dup_drops.reset();
    gap_requests.reset();
    gap_resends.reset();
    resend_misses.reset();
  }
};

/// Plain-value copy of NodeStats, mergeable across nodes.
struct NodeStats::Snapshot {
  std::uint64_t ro_commits = 0;
  std::uint64_t update_commits = 0;
  std::uint64_t aborts_lock = 0;
  std::uint64_t aborts_validation = 0;
  std::uint64_t aborts_vote_timeout = 0;
  std::uint64_t collected_count = 0;
  std::uint64_t collected_sum = 0;
  std::uint64_t collected_max = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t versions_installed = 0;
  std::uint64_t propagates_applied = 0;
  std::uint64_t removes_processed = 0;
  std::uint64_t decides_applied = 0;
  std::uint64_t events_buffered = 0;
  std::uint64_t prepare_retries = 0;
  std::uint64_t decide_retries = 0;
  std::uint64_t dup_drops = 0;
  std::uint64_t gap_requests = 0;
  std::uint64_t gap_resends = 0;
  std::uint64_t resend_misses = 0;

  std::uint64_t total_commits() const { return ro_commits + update_commits; }
  std::uint64_t total_aborts() const {
    return aborts_lock + aborts_validation + aborts_vote_timeout;
  }
  /// Abort rate over update-transaction attempts, as plotted in Figs. 7/9a.
  double update_abort_rate() const {
    const std::uint64_t attempts = update_commits + total_aborts();
    return attempts == 0
               ? 0.0
               : static_cast<double>(total_aborts()) /
                     static_cast<double>(attempts);
  }
  double mean_collected_set() const {
    return collected_count == 0 ? 0.0
                                : static_cast<double>(collected_sum) /
                                      static_cast<double>(collected_count);
  }

  void merge(const Snapshot& o) {
    ro_commits += o.ro_commits;
    update_commits += o.update_commits;
    aborts_lock += o.aborts_lock;
    aborts_validation += o.aborts_validation;
    aborts_vote_timeout += o.aborts_vote_timeout;
    collected_count += o.collected_count;
    collected_sum += o.collected_sum;
    collected_max = collected_max > o.collected_max ? collected_max
                                                    : o.collected_max;
    reads_served += o.reads_served;
    versions_installed += o.versions_installed;
    propagates_applied += o.propagates_applied;
    removes_processed += o.removes_processed;
    decides_applied += o.decides_applied;
    events_buffered += o.events_buffered;
    prepare_retries += o.prepare_retries;
    decide_retries += o.decide_retries;
    dup_drops += o.dup_drops;
    gap_requests += o.gap_requests;
    gap_resends += o.gap_resends;
    resend_misses += o.resend_misses;
  }
};

inline NodeStats::Snapshot NodeStats::snapshot() const {
  Snapshot s;
  s.ro_commits = ro_commits.get();
  s.update_commits = update_commits.get();
  s.aborts_lock = aborts_lock.get();
  s.aborts_validation = aborts_validation.get();
  s.aborts_vote_timeout = aborts_vote_timeout.get();
  s.collected_count = collected_set_size.count();
  s.collected_sum = collected_set_size.sum();
  s.collected_max = collected_set_size.max();
  s.reads_served = reads_served.get();
  s.versions_installed = versions_installed.get();
  s.propagates_applied = propagates_applied.get();
  s.removes_processed = removes_processed.get();
  s.decides_applied = decides_applied.get();
  s.events_buffered = events_buffered.get();
  s.prepare_retries = prepare_retries.get();
  s.decide_retries = decide_retries.get();
  s.dup_drops = dup_drops.get();
  s.gap_requests = gap_requests.get();
  s.gap_resends = gap_resends.get();
  s.resend_misses = resend_misses.get();
  return s;
}

}  // namespace fwkv
