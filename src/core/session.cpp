#include "core/session.hpp"

#include <cassert>

#include "core/cluster.hpp"

namespace fwkv {

Session::Session(Cluster& cluster, NodeId node, std::uint32_t client_id)
    : cluster_(&cluster),
      node_(&cluster.node(node)),
      node_id_(node),
      client_id_(client_id) {}

Transaction Session::begin(bool read_only) {
  Transaction tx(TxId(node_id_, client_id_, next_local_seq_++), read_only,
                 cluster_->num_nodes());
  node_->begin(tx);
  return tx;
}

std::optional<Value> Session::read(Transaction& tx, Key key) {
  assert(tx.status() == TxStatus::kActive);
  return node_->read(tx, key);
}

void Session::write(Transaction& tx, Key key, Value value) {
  assert(tx.status() == TxStatus::kActive);
  assert(!tx.read_only() && "writes are not allowed in read-only txs");
  node_->write(tx, key, std::move(value));
}

bool Session::commit(Transaction& tx) {
  assert(tx.status() == TxStatus::kActive);
  return node_->commit(tx);
}

void Session::abort(Transaction& tx) { node_->abort(tx); }

}  // namespace fwkv
