// Protocol-level configuration shared by the three evaluated systems.
#pragma once

#include <chrono>
#include <cstdint>

#include "common/consistent_hash.hpp"
#include "common/ids.hpp"

namespace fwkv::net {
class SimNetwork;
}

namespace fwkv {

/// The three concurrency controls of the evaluation study (§5).
enum class Protocol : std::uint8_t {
  kFwKv = 0,    // this paper's contribution (PSI, fresh reads)
  kWalter = 1,  // PSI baseline, snapshot fixed at begin
  kTwoPC = 2,   // serializable OCC baseline, read-only txs also run 2PC
};

inline const char* protocol_name(Protocol p) {
  switch (p) {
    case Protocol::kFwKv:
      return "FW-KV";
    case Protocol::kWalter:
      return "Walter";
    case Protocol::kTwoPC:
      return "2PC";
  }
  return "?";
}

/// Why an update transaction aborted. Read-only transactions never abort in
/// the PSI systems; in 2PC-baseline they can fail validation like any other.
enum class AbortReason : std::uint8_t {
  kNone = 0,
  kLockTimeout,   // prepare could not lock the write-set in time
  kValidation,    // a written (or, for 2PC, read) key was overwritten
  kVoteTimeout,   // a participant's vote did not arrive in time
  kUserAbort,     // client called abort()
};

inline const char* abort_reason_name(AbortReason r) {
  switch (r) {
    case AbortReason::kNone:
      return "none";
    case AbortReason::kLockTimeout:
      return "lock-timeout";
    case AbortReason::kValidation:
      return "validation";
    case AbortReason::kVoteTimeout:
      return "vote-timeout";
    case AbortReason::kUserAbort:
      return "user";
  }
  return "?";
}

struct ProtocolConfig {
  /// Per-key lock acquisition timeout (the paper uses 1 ms on a ~20 us
  /// network; the ratio is preserved by default).
  std::chrono::nanoseconds lock_timeout{std::chrono::milliseconds(1)};
  /// Period of the background propagation flush (Walter propagates
  /// periodically, outside the transaction critical path). The commit path
  /// additionally flushes to its 2PC participants immediately so Decide
  /// application never stalls on a pending batch.
  std::chrono::nanoseconds propagate_flush_interval{
      std::chrono::milliseconds(1)};
  /// Safety bound on waiting for votes / read returns. Orders of magnitude
  /// above any healthy round trip; hitting it counts as kVoteTimeout.
  std::chrono::nanoseconds rpc_timeout{std::chrono::seconds(5)};

  // Fault-tolerance knobs (used when the network injects faults; on a
  // reliable network the retry loops terminate on the first attempt and
  // none of these change behaviour).
  /// Per-attempt wait for a participant's vote. Attempt k waits
  /// prepare_timeout * 2^k; after prepare_attempts the coordinator
  /// timeout-aborts (kVoteTimeout) and Decides abort so participant locks
  /// are released.
  std::chrono::nanoseconds prepare_timeout{std::chrono::seconds(1)};
  std::uint32_t prepare_attempts = 3;
  /// Per-attempt wait for a DecideAck when decides are acknowledged (2PC
  /// always; PSI protocols only under an active FaultPlan). Backoff doubles
  /// per attempt; the tail must outlive any partition heal time.
  std::chrono::nanoseconds decide_ack_timeout{std::chrono::milliseconds(15)};
  std::uint32_t decide_attempts = 6;
  /// How long a buffered out-of-order commit event may wait before the
  /// receiver asks the origin to replay the missing seq range.
  std::chrono::nanoseconds gap_request_delay{std::chrono::milliseconds(5)};
};

/// Everything a protocol node needs to know about the world around it.
/// Owned by the Cluster; nodes hold a reference.
struct ClusterContext {
  net::SimNetwork* network = nullptr;
  const KeyMapper* mapper = nullptr;
  ProtocolConfig config;
  std::uint32_t num_nodes = 0;
};

}  // namespace fwkv
