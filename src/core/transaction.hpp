// Client-side transaction handle (§2.3 transaction model). A Transaction is
// created by Session::begin and driven by exactly one client thread; it is
// not thread-safe and never needs to be.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/ids.hpp"
#include "common/vector_clock.hpp"
#include "core/protocol.hpp"

namespace fwkv {

enum class TxStatus : std::uint8_t { kActive, kCommitted, kAborted };

class Transaction {
 public:
  Transaction(TxId id, bool read_only, std::size_t cluster_size);

  TxId id() const { return id_; }
  bool read_only() const { return read_only_; }
  TxStatus status() const { return status_; }
  AbortReason abort_reason() const { return abort_reason_; }

  /// T.VC — the reading-snapshot vector clock (Alg. 1 line 2, Alg. 2 line 9).
  VectorClock& vc() { return vc_; }
  const VectorClock& vc() const { return vc_; }

  /// T.hasRead — sites whose snapshot entry is frozen (Alg. 2 line 8).
  AccessVector& has_read() { return has_read_; }
  const AccessVector& has_read() const { return has_read_; }

  /// T.writeset — buffered lazy updates (§4.2).
  const std::map<Key, Value>& write_set() const { return write_set_; }
  void buffer_write(Key key, Value value);
  std::optional<Value> written_value(Key key) const;

  /// Client-side cache of completed reads: repeatable reads within the
  /// transaction without re-contacting the owner node.
  std::optional<Value> cached_read(Key key) const;
  void cache_read(Key key, Value value);

  /// T.readKeys — the per-transaction registration buffer: (site, key) for
  /// every key a read-only transaction read, in read order (Alg. 2 line 11).
  /// Flushed once at commit as one batched Remove per contacted site
  /// (Alg. 4 lines 3-5), so reader deregistration costs one message and one
  /// index access per site instead of per key.
  const std::vector<std::pair<NodeId, Key>>& read_registrations() const {
    return read_registrations_;
  }
  void record_read_key(NodeId site, Key key);

  /// Group the registration buffer by site for the commit-time flush.
  std::vector<std::pair<NodeId, std::vector<Key>>> registrations_by_site()
      const;

  /// 2PC-baseline read validation set: key -> version observed.
  const std::map<Key, VersionId>& validation_set() const {
    return validation_set_;
  }
  void record_validation(Key key, VersionId version);

  // Per-transaction freshness instrumentation (Ext. A experiment): a read
  // is stale when the returned version is older than the newest installed
  // version at the serving node at read time.
  std::uint32_t reads_issued() const { return reads_issued_; }
  std::uint64_t freshness_gap_sum() const { return freshness_gap_sum_; }
  std::uint32_t stale_reads() const { return stale_reads_; }
  void record_read_freshness(VersionId returned, VersionId latest);

  void mark_committed() { status_ = TxStatus::kCommitted; }
  void mark_aborted(AbortReason reason) {
    status_ = TxStatus::kAborted;
    abort_reason_ = reason;
  }

 private:
  TxId id_;
  bool read_only_;
  TxStatus status_ = TxStatus::kActive;
  AbortReason abort_reason_ = AbortReason::kNone;

  VectorClock vc_;
  AccessVector has_read_;
  std::map<Key, Value> write_set_;
  std::unordered_map<Key, Value> read_cache_;
  std::vector<std::pair<NodeId, Key>> read_registrations_;
  std::map<Key, VersionId> validation_set_;

  std::uint32_t reads_issued_ = 0;
  std::uint64_t freshness_gap_sum_ = 0;
  std::uint32_t stale_reads_ = 0;
};

}  // namespace fwkv
