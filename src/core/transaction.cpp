#include "core/transaction.hpp"

namespace fwkv {

Transaction::Transaction(TxId id, bool read_only, std::size_t cluster_size)
    : id_(id),
      read_only_(read_only),
      vc_(cluster_size),
      has_read_(cluster_size) {}

void Transaction::buffer_write(Key key, Value value) {
  write_set_[key] = std::move(value);
}

std::optional<Value> Transaction::written_value(Key key) const {
  auto it = write_set_.find(key);
  if (it == write_set_.end()) return std::nullopt;
  return it->second;
}

std::optional<Value> Transaction::cached_read(Key key) const {
  auto it = read_cache_.find(key);
  if (it == read_cache_.end()) return std::nullopt;
  return it->second;
}

void Transaction::cache_read(Key key, Value value) {
  read_cache_.emplace(key, std::move(value));
}

void Transaction::record_read_key(Key key) { read_keys_.push_back(key); }

void Transaction::record_validation(Key key, VersionId version) {
  validation_set_.emplace(key, version);
}

void Transaction::record_read_freshness(VersionId returned, VersionId latest) {
  ++reads_issued_;
  if (latest > returned) {
    ++stale_reads_;
    freshness_gap_sum_ += latest - returned;
  }
}

}  // namespace fwkv
