#include "core/transaction.hpp"

#include <algorithm>

namespace fwkv {

Transaction::Transaction(TxId id, bool read_only, std::size_t cluster_size)
    : id_(id),
      read_only_(read_only),
      vc_(cluster_size),
      has_read_(cluster_size) {}

void Transaction::buffer_write(Key key, Value value) {
  write_set_[key] = std::move(value);
}

std::optional<Value> Transaction::written_value(Key key) const {
  auto it = write_set_.find(key);
  if (it == write_set_.end()) return std::nullopt;
  return it->second;
}

std::optional<Value> Transaction::cached_read(Key key) const {
  auto it = read_cache_.find(key);
  if (it == read_cache_.end()) return std::nullopt;
  return it->second;
}

void Transaction::cache_read(Key key, Value value) {
  read_cache_.emplace(key, std::move(value));
}

void Transaction::record_read_key(NodeId site, Key key) {
  read_registrations_.emplace_back(site, key);
}

std::vector<std::pair<NodeId, std::vector<Key>>>
Transaction::registrations_by_site() const {
  // Transactions touch a handful of sites; a flat scan beats a map.
  std::vector<std::pair<NodeId, std::vector<Key>>> grouped;
  for (const auto& [site, key] : read_registrations_) {
    auto it = std::find_if(grouped.begin(), grouped.end(),
                           [s = site](const auto& g) { return g.first == s; });
    if (it == grouped.end()) {
      grouped.emplace_back(site, std::vector<Key>{key});
    } else {
      it->second.push_back(key);
    }
  }
  return grouped;
}

void Transaction::record_validation(Key key, VersionId version) {
  validation_set_.emplace(key, version);
}

void Transaction::record_read_freshness(VersionId returned, VersionId latest) {
  ++reads_issued_;
  if (latest > returned) {
    ++stale_reads_;
    freshness_gap_sum_ += latest - returned;
  }
}

}  // namespace fwkv
