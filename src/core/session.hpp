// A client handle bound to one node of the cluster. Sessions are cheap;
// each closed-loop client thread owns one. Not thread-safe (one driver
// thread per session, matching the paper's closed-loop clients).
#pragma once

#include <cstdint>
#include <optional>

#include "core/transaction.hpp"

namespace fwkv {

class Cluster;
class KvNode;

class Session {
 public:
  /// Begin a transaction on the co-located node. Read-only transactions
  /// must be declared by the programmer (§2.3).
  Transaction begin(bool read_only = false);

  /// Alg. 2. nullopt iff the key does not exist (or the transaction is in a
  /// state where reads are no longer allowed).
  std::optional<Value> read(Transaction& tx, Key key);

  /// §4.2: buffered until commit.
  void write(Transaction& tx, Key key, Value value);

  /// Alg. 4. On false, tx.abort_reason() explains the failure.
  bool commit(Transaction& tx);

  void abort(Transaction& tx);

  NodeId node_id() const { return node_id_; }
  std::uint32_t client_id() const { return client_id_; }

 private:
  friend class Cluster;
  Session(Cluster& cluster, NodeId node, std::uint32_t client_id);

  Cluster* cluster_;
  KvNode* node_;
  NodeId node_id_;
  std::uint32_t client_id_;
  std::uint32_t next_local_seq_ = 1;
};

}  // namespace fwkv
