// Shared implementation of the two PSI systems. FW-KV and Walter differ in
// exactly two behavioural dimensions (§3.2, §4):
//
//   fresh_reads()    - FW-KV advances T.VC / freezes per-site snapshots on
//                      read (Alg. 2 lines 8-9) and selects versions with
//                      Alg. 3; Walter fixes the whole snapshot at begin and
//                      selects with the per-origin scalar rule.
//   track_antideps() - FW-KV maintains version-access-sets, collects them
//                      during prepare, stamps them at decide, and sends
//                      Remove messages; Walter does none of that.
//
// Everything else — preferred sites, 2PC commit, per-node sequence numbers,
// in-order Decide/Propagate application (Alg. 5 line 16 / Alg. 6 line 2) —
// is common and lives here.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/kv_node.hpp"
#include "store/lock_table.hpp"
#include "store/mv_store.hpp"

namespace fwkv {

class MvNodeBase : public KvNode {
 public:
  MvNodeBase(NodeId id, ClusterContext& ctx);

  // ---- client-side API ----
  void begin(Transaction& tx) override;
  std::optional<Value> read(Transaction& tx, Key key) override;
  bool commit(Transaction& tx) override;
  void load(Key key, Value value) override;

  // ---- NodeEndpoint ----
  void handle_message(net::Message msg, NodeId from) override;
  std::size_t pending_work() const override;

  // ---- introspection (tests, examples, experiments) ----
  VectorClock site_vc() const;
  SeqNo curr_seq() const;
  store::MVStore& mv_store() { return store_; }
  const store::MVStore& mv_store() const { return store_; }

  /// Immediately flush all pending propagation batches (used by
  /// Cluster::quiesce so tests observe a settled cluster).
  void flush_propagation();
  void quiesce_flush() override { flush_propagation(); }

 protected:
  /// FW-KV: true. Walter: false.
  virtual bool fresh_reads() const = 0;
  /// FW-KV: true. Walter: false.
  virtual bool track_antideps() const = 0;

 private:
  // Server-side handlers (run on executor lanes).
  void on_read_request(const net::ReadRequest& req);
  void on_prepare(const net::PrepareRequest& req);
  void on_decide(net::DecideMessage&& m);
  void on_propagate(const net::PropagateMessage& m);
  void on_remove(const net::RemoveMessage& m);
  void on_resend_request(const net::ResendRequest& m);

  // In-order application machinery. Both require site_mu_ held.
  void apply_decide_locked(net::DecideMessage& m);
  void drain_pending_locked(NodeId origin);

  /// Release the exclusive locks remembered at prepare time (no-op if this
  /// node voted no or never prepared the transaction).
  void release_prepared(TxId tx);

  /// Shared-lock acquisition for read handlers; loops on the (short) lock
  /// timeout so reads wait out concurrent 2PC windows instead of failing
  /// (read-only transactions are abort-free, §1).
  void read_lock_shared(Key key, TxId tx);

  net::TxDescriptor descriptor(const Transaction& tx) const;

  store::MVStore store_;
  store::LockTable locks_;

  // siteVC / CurrSeqNo (§4.1) and the per-origin pending event buffers that
  // realize the "wait until siteVC[j] = seqNo - 1" conditions without
  // blocking handler threads.
  mutable std::mutex site_mu_;
  VectorClock site_vc_;
  SeqNo curr_seq_ = 0;

  struct PendingEvent {
    bool is_decide = false;
    net::DecideMessage decide;
    net::PropagateMessage propagate;
  };
  /// Per-origin pending events keyed by the seq they start at (a Decide's
  /// seq_no or a Propagate range's from_seq).
  std::vector<std::map<SeqNo, PendingEvent>> pending_;
  std::atomic<std::size_t> pending_count_{0};

  // ---- gap repair (fault injection only; guarded by site_mu_) ----
  //
  // When an event is buffered out of order and faults are active, a watchdog
  // fires after gap_request_delay and asks the origin to replay the missing
  // seq range; it re-arms itself while the gap persists (the ResendRequest
  // or its replay can be lost too).
  std::vector<char> gap_armed_;
  void arm_gap_watch_locked(NodeId origin);
  void gap_check(NodeId origin);

  // ---- outgoing propagation batching (guarded by site_mu_) ----
  //
  // Every local commit seq is delivered to every other node exactly once:
  // as a Decide to the 2PC participants (and to ourselves), and inside a
  // contiguous Propagate range to everyone else. commit_log_ records which
  // destinations received Decides for each seq; next_unsent_[d] is the
  // first seq not yet covered for destination d.
  struct CommitRecord {
    std::vector<NodeId> decide_dests;
    /// Retained only under an active FaultPlan: the Decide payload per
    /// participant, so a lost Decide can be replayed for a ResendRequest.
    std::vector<std::pair<NodeId, net::DecideMessage>> decide_payloads;
  };
  std::deque<CommitRecord> commit_log_;
  SeqNo commit_log_base_ = 1;  // seq of commit_log_.front()
  std::vector<SeqNo> next_unsent_;
  /// How many trailing commit records are retained for replay under faults
  /// (without faults, records are pruned as soon as every peer is covered).
  static constexpr SeqNo kResendHorizon = 4096;

  /// Append Propagate ranges for `dest` covering (next_unsent_[dest] ..
  /// curr_seq_] to `out`; advances next_unsent_[dest].
  void collect_ranges_locked(NodeId dest,
                             std::vector<std::pair<NodeId, net::PropagateMessage>>& out);
  void prune_commit_log_locked();
  void flush_timer_tick();

  // Write-set keys locked at prepare, awaiting the decision. Redelivered
  // Prepares are deduplicated here: `preparing_` marks a prepare mid-flight
  // on another handler thread (a concurrent duplicate is dropped),
  // `prepared_` marks a yes-vote awaiting its Decide (a duplicate re-votes
  // yes without re-locking), and `decided_` remembers recently decided
  // transactions so a stale retransmitted Prepare arriving after the
  // decision cannot re-lock keys that nothing would ever release.
  std::mutex prepared_mu_;
  std::unordered_map<TxId, std::vector<Key>> prepared_;
  std::unordered_set<TxId> preparing_;
  std::unordered_set<TxId> decided_;
  std::deque<TxId> decided_fifo_;
  static constexpr std::size_t kDecidedHorizon = 1 << 16;
  /// Requires prepared_mu_. Bounded-memory insert into the decided set.
  void note_decided_locked(TxId tx);
};

/// The paper's contribution: fresh first-reads per site, visible reads with
/// version-access-sets, SCORe-style safe snapshots for update transactions.
class FwKvNode final : public MvNodeBase {
 public:
  using MvNodeBase::MvNodeBase;

 protected:
  bool fresh_reads() const override { return true; }
  bool track_antideps() const override { return true; }
};

/// The Walter baseline: begin-time snapshot, no anti-dependency metadata.
class WalterNode final : public MvNodeBase {
 public:
  using MvNodeBase::MvNodeBase;

 protected:
  bool fresh_reads() const override { return false; }
  bool track_antideps() const override { return false; }
};

}  // namespace fwkv
