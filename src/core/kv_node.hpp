// Abstract protocol node: the unit of deployment (§2.1). A node is both a
// server (message handlers run on its executor lanes) and the coordinator
// host for transactions begun by clients co-located with it.
#pragma once

#include <optional>

#include "core/node_stats.hpp"
#include "core/protocol.hpp"
#include "core/transaction.hpp"
#include "net/network.hpp"

namespace fwkv {

class KvNode : public net::NodeEndpoint {
 public:
  KvNode(NodeId id, ClusterContext& ctx) : id_(id), ctx_(ctx) {}
  ~KvNode() override = default;

  NodeId id() const { return id_; }
  NodeStats& stats() { return stats_; }
  const NodeStats& stats() const { return stats_; }

  // ---- client-side API (invoked from client threads on this node) ----

  /// Alg. 1: initialize T.VC from this node's siteVC, clear T.hasRead.
  virtual void begin(Transaction& tx) = 0;

  /// Alg. 2: read-your-writes, then remote/local ReadRequest.
  /// nullopt only if the key does not exist anywhere.
  virtual std::optional<Value> read(Transaction& tx, Key key) = 0;

  /// §4.2 lazy update: buffer into T.writeset.
  void write(Transaction& tx, Key key, Value value) {
    tx.buffer_write(key, std::move(value));
  }

  /// Alg. 4. Returns true on commit. On false the transaction is aborted
  /// and tx.abort_reason() says why.
  virtual bool commit(Transaction& tx) = 0;

  /// Client-initiated abort: releases nothing (locks are only taken during
  /// commit) but tells read-only bookkeeping to clean up.
  virtual void abort(Transaction& tx) { tx.mark_aborted(AbortReason::kUserAbort); }

  // ---- data loading (pre-run, single-writer) ----
  virtual void load(Key key, Value value) = 0;

  /// Push out any batched asynchronous work immediately (propagation
  /// batches). Called by Cluster::quiesce; default: nothing to flush.
  virtual void quiesce_flush() {}

 protected:
  NodeId id_;
  ClusterContext& ctx_;
  NodeStats stats_;
};

}  // namespace fwkv
