#include "core/cluster.hpp"

#include <cassert>

#include "core/mv_node.hpp"
#include "core/session.hpp"
#include "twopc/twopc_node.hpp"

namespace fwkv {

Cluster::Cluster(ClusterConfig config)
    : config_(config),
      mapper_(config.mapper
                  ? config.mapper
                  : std::make_shared<const ConsistentHashRing>(
                        config.num_nodes, config.ring_vnodes)),
      network_(std::make_unique<net::SimNetwork>(config.num_nodes,
                                                 config.net)) {
  assert(config_.num_nodes > 0);
  ctx_.network = network_.get();
  ctx_.mapper = mapper_.get();
  ctx_.config = config_.protocol_config;
  ctx_.num_nodes = config_.num_nodes;

  nodes_.reserve(config_.num_nodes);
  for (NodeId n = 0; n < config_.num_nodes; ++n) {
    switch (config_.protocol) {
      case Protocol::kFwKv:
        nodes_.push_back(std::make_unique<FwKvNode>(n, ctx_));
        break;
      case Protocol::kWalter:
        nodes_.push_back(std::make_unique<WalterNode>(n, ctx_));
        break;
      case Protocol::kTwoPC:
        nodes_.push_back(std::make_unique<TwoPcNode>(n, ctx_));
        break;
    }
    network_->register_endpoint(n, nodes_.back().get());
  }
}

Cluster::~Cluster() {
  // Asynchronous messages (Decide, Propagate, Remove) may still be in
  // flight when the cluster goes out of scope. Tear the network down first:
  // its destructor drains the executors, so no handler can touch a node
  // after the nodes start being destroyed.
  network_.reset();
}

void Cluster::load(Key key, Value value) {
  nodes_[mapper_->node_for(key)]->load(key, std::move(value));
}

Session Cluster::make_session(NodeId node, std::uint32_t client_id) {
  assert(node < config_.num_nodes);
  return Session(*this, node, client_id);
}

bool Cluster::quiesce(std::chrono::nanoseconds timeout) {
  // Propagation is batched; push the batches out so the quiescent state
  // reflects every commit that returned to a client.
  for (auto& node : nodes_) node->quiesce_flush();
  return network_->wait_quiescent(timeout);
}

NodeStats::Snapshot Cluster::aggregate_stats() const {
  NodeStats::Snapshot total;
  for (const auto& node : nodes_) total.merge(node->stats().snapshot());
  return total;
}

void Cluster::reset_stats() {
  for (auto& node : nodes_) node->stats().reset();
}

}  // namespace fwkv
