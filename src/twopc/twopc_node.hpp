// 2PC-baseline (§5): a serializable distributed key-value store where every
// transaction — including read-only ones — executes optimistically and then
// validates its read-set and installs its write-set through Two-Phase
// Commit. Single-versioned: a read observes the current value, records its
// version, and the version must still be current at prepare time.
//
// This is the comparator whose read-only commit cost PSI systems avoid; the
// paper reports FW-KV/Walter at >3x its throughput.
#pragma once

#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/kv_node.hpp"
#include "store/lock_table.hpp"
#include "store/sv_store.hpp"

namespace fwkv {

class TwoPcNode final : public KvNode {
 public:
  TwoPcNode(NodeId id, ClusterContext& ctx);

  // ---- client-side API ----
  void begin(Transaction& tx) override;
  std::optional<Value> read(Transaction& tx, Key key) override;
  bool commit(Transaction& tx) override;
  void load(Key key, Value value) override;

  // ---- NodeEndpoint ----
  void handle_message(net::Message msg, NodeId from) override;
  std::size_t pending_work() const override { return 0; }

  store::SVStore& sv_store() { return store_; }

 private:
  void on_read_request(const net::ReadRequest& req);
  void on_prepare(const net::PrepareRequest& req);
  void on_decide(net::DecideMessage&& m);
  void release_prepared(TxId tx, bool install,
                        const std::vector<net::WriteEntry>& writes);

  store::SVStore store_;
  store::LockTable locks_;

  struct PreparedLocks {
    std::vector<Key> exclusive;  // written keys
    std::vector<Key> shared;     // read-only-validated keys
  };
  // Redelivered Prepares are deduplicated by tx id: `preparing_` covers a
  // prepare mid-flight on another thread, `prepared_` a yes-vote awaiting
  // its Decide (re-vote yes), `decided_` recently decided transactions so a
  // stale retransmitted Prepare cannot re-lock keys nothing would release.
  std::mutex prepared_mu_;
  std::unordered_map<TxId, PreparedLocks> prepared_;
  std::unordered_set<TxId> preparing_;
  std::unordered_set<TxId> decided_;
  std::deque<TxId> decided_fifo_;
  static constexpr std::size_t kDecidedHorizon = 1 << 16;
  /// Requires prepared_mu_. Bounded-memory insert into the decided set.
  void note_decided_locked(TxId tx);
};

}  // namespace fwkv
