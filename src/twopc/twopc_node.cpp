#include "twopc/twopc_node.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "net/network.hpp"

namespace fwkv {

using net::DecideMessage;
using net::Message;
using net::PrepareRequest;
using net::ReadRequest;
using net::ReadReturn;
using net::ReadValidationEntry;
using net::VoteFail;
using net::VoteReply;
using net::WriteEntry;

TwoPcNode::TwoPcNode(NodeId id, ClusterContext& ctx) : KvNode(id, ctx) {}

void TwoPcNode::begin(Transaction& /*tx*/) {
  // Optimistic execution: nothing to snapshot.
}

std::optional<Value> TwoPcNode::read(Transaction& tx, Key key) {
  if (auto written = tx.written_value(key)) return written;
  if (auto cached = tx.cached_read(key)) return cached;

  const NodeId target = ctx_.mapper->node_for(key);
  ReadRequest req;
  req.tx.id = tx.id();
  req.tx.read_only = tx.read_only();
  req.key = key;
  // Reads are idempotent: under fault injection a lost request or reply is
  // simply retried (one attempt suffices on a reliable network).
  const int attempts = ctx_.network->faults_active() ? 3 : 1;
  std::optional<Message> reply;
  for (int a = 0; a < attempts && !reply.has_value(); ++a) {
    auto call = attempts == 1
                    ? ctx_.network->send_request(id_, target, std::move(req))
                    : ctx_.network->send_request(id_, target, req);
    reply = call.await(ctx_.config.rpc_timeout);
    if (!reply.has_value()) ctx_.network->cancel_rpc(call);
  }
  if (!reply.has_value()) return std::nullopt;
  auto& rr = std::get<ReadReturn>(*reply);
  if (!rr.found) return std::nullopt;

  // Record the observed version: prepare re-checks it on the owner node.
  tx.record_validation(key, rr.version_id);
  tx.cache_read(key, rr.value);
  return rr.value;
}

bool TwoPcNode::commit(Transaction& tx) {
  // Unlike the PSI systems, read-only transactions go through the full
  // prepare/decide cycle to validate their reads (this is the cost the
  // paper's Fig. 5/8 measure against).
  struct SiteWork {
    std::vector<WriteEntry> writes;
    std::vector<ReadValidationEntry> reads;
  };
  std::map<NodeId, SiteWork> by_site;
  for (const auto& [key, value] : tx.write_set()) {
    by_site[ctx_.mapper->node_for(key)].writes.push_back(WriteEntry{key, value});
  }
  for (const auto& [key, version] : tx.validation_set()) {
    // A key that is also written is validated with the exclusive lock; no
    // separate shared entry needed — the participant handles the overlap.
    by_site[ctx_.mapper->node_for(key)].reads.push_back(
        ReadValidationEntry{key, version});
  }
  if (by_site.empty()) {  // touched nothing at all
    tx.mark_committed();
    stats_.ro_commits.add();
    return true;
  }

  const bool chaos = ctx_.network->faults_active();
  std::vector<net::RpcCall> calls;
  std::vector<NodeId> participants;
  std::vector<PrepareRequest> preps;  // retained for retries under faults
  for (auto& [site, work] : by_site) {
    PrepareRequest prep;
    prep.tx = tx.id();
    prep.writes = work.writes;
    prep.reads = work.reads;
    participants.push_back(site);
    if (chaos) preps.push_back(prep);
    calls.push_back(ctx_.network->send_request(id_, site, std::move(prep)));
  }

  std::vector<std::optional<VoteReply>> votes(calls.size());
  if (!chaos) {
    for (std::size_t i = 0; i < calls.size(); ++i) {
      if (auto reply = calls[i].await(ctx_.config.rpc_timeout)) {
        votes[i] = std::get<VoteReply>(std::move(*reply));
      }
    }
  } else {
    // Bounded exponential backoff re-sends to participants whose vote is
    // missing; they deduplicate by tx id and re-vote idempotently. After
    // the last attempt the coordinator timeout-aborts and the abort Decide
    // below releases any participant locks.
    for (std::uint32_t attempt = 0; attempt < ctx_.config.prepare_attempts;
         ++attempt) {
      const auto wait = ctx_.config.prepare_timeout * (1u << attempt);
      bool all = true;
      for (std::size_t i = 0; i < calls.size(); ++i) {
        if (votes[i].has_value()) continue;
        if (auto reply = calls[i].await(wait)) {
          votes[i] = std::get<VoteReply>(std::move(*reply));
        } else {
          ctx_.network->cancel_rpc(calls[i]);
          all = false;
        }
      }
      if (all || attempt + 1 == ctx_.config.prepare_attempts) break;
      for (std::size_t i = 0; i < calls.size(); ++i) {
        if (votes[i].has_value()) continue;
        stats_.prepare_retries.add();
        calls[i] = ctx_.network->send_request(id_, participants[i], preps[i]);
      }
    }
  }

  bool outcome = true;
  AbortReason reason = AbortReason::kNone;
  for (const auto& v : votes) {
    if (!v.has_value()) {
      outcome = false;
      if (reason == AbortReason::kNone) reason = AbortReason::kVoteTimeout;
      continue;
    }
    const VoteReply& vote = *v;
    if (!vote.ok) {
      outcome = false;
      if (reason == AbortReason::kNone) {
        reason = vote.fail_reason == VoteFail::kLock
                     ? AbortReason::kLockTimeout
                     : AbortReason::kValidation;
      }
    }
  }

  // Full synchronous second phase: the transaction completes only after
  // every participant applied the decision and acknowledged. This is the
  // read-only commit cost PSI avoids (§5: read-only transactions "undergo
  // an expensive commit phase using the 2PC protocol"). Under faults the
  // Decide is re-sent with backoff until acknowledged — a lost Decide
  // would strand the participant's locks.
  auto make_decide = [&](NodeId site) {
    DecideMessage d;
    d.tx = tx.id();
    d.outcome = outcome;
    d.origin = id_;
    d.writes = by_site[site].writes;
    return d;
  };
  std::vector<NodeId> unacked = participants;
  std::vector<net::RpcCall> ack_calls;
  for (NodeId site : participants) {
    ack_calls.push_back(ctx_.network->send_request(id_, site, make_decide(site)));
  }
  const std::uint32_t rounds = chaos ? ctx_.config.decide_attempts : 1;
  for (std::uint32_t attempt = 0; attempt < rounds && !unacked.empty();
       ++attempt) {
    const auto wait = chaos ? ctx_.config.decide_ack_timeout * (1u << attempt)
                            : ctx_.config.rpc_timeout;
    std::vector<NodeId> still;
    std::vector<net::RpcCall> still_calls;
    for (std::size_t i = 0; i < ack_calls.size(); ++i) {
      if (ack_calls[i].await(wait).has_value()) continue;
      ctx_.network->cancel_rpc(ack_calls[i]);
      if (attempt + 1 < rounds) {
        stats_.decide_retries.add();
        still.push_back(unacked[i]);
        still_calls.push_back(
            ctx_.network->send_request(id_, unacked[i], make_decide(unacked[i])));
      }
    }
    unacked = std::move(still);
    ack_calls = std::move(still_calls);
  }

  if (outcome) {
    tx.mark_committed();
    if (tx.write_set().empty()) {
      stats_.ro_commits.add();
    } else {
      stats_.update_commits.add();
    }
    return true;
  }
  tx.mark_aborted(reason);
  switch (reason) {
    case AbortReason::kLockTimeout:
      stats_.aborts_lock.add();
      break;
    case AbortReason::kValidation:
      stats_.aborts_validation.add();
      break;
    default:
      stats_.aborts_vote_timeout.add();
      break;
  }
  return false;
}

void TwoPcNode::load(Key key, Value value) {
  store_.load(key, std::move(value));
}

void TwoPcNode::handle_message(Message msg, NodeId /*from*/) {
  std::visit(
      [this](auto&& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ReadRequest>) {
          on_read_request(m);
        } else if constexpr (std::is_same_v<T, PrepareRequest>) {
          on_prepare(m);
        } else if constexpr (std::is_same_v<T, DecideMessage>) {
          on_decide(std::move(m));
        } else {
          assert(false && "unexpected message for 2PC-baseline node");
        }
      },
      std::move(msg));
}

void TwoPcNode::on_read_request(const ReadRequest& req) {
  stats_.reads_served.add();
  ReadReturn ret;
  ret.rpc_id = req.rpc_id;
  if (auto item = store_.read(req.key)) {
    ret.found = true;
    ret.value = std::move(item->value);
    ret.version_id = item->version;
    ret.latest_id = item->version;
  }
  ctx_.network->send(id_, req.reply_to, std::move(ret));
}

void TwoPcNode::on_prepare(const PrepareRequest& req) {
  // Redelivery dedup, keyed by tx id (see twopc_node.hpp). Only live once
  // deliveries may have been disturbed (injector or pauses): on a reliable
  // network Prepares are never redelivered, and a long-lived decided set
  // would misread a recycled tx id (a fresh session restarting its seq
  // counter) as a stale retransmission.
  if (ctx_.network->deliveries_disturbed()) {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    if (decided_.count(req.tx) != 0 || preparing_.count(req.tx) != 0) {
      stats_.dup_drops.add();
      return;
    }
    if (prepared_.count(req.tx) != 0) {
      // Already voted yes; locks still held. Re-vote for the retry.
      stats_.dup_drops.add();
      VoteReply vote;
      vote.rpc_id = req.rpc_id;
      vote.ok = true;
      ctx_.network->send(id_, req.reply_to, std::move(vote));
      return;
    }
    preparing_.insert(req.tx);
  }

  PreparedLocks held;
  for (const auto& w : req.writes) held.exclusive.push_back(w.key);
  std::sort(held.exclusive.begin(), held.exclusive.end());
  held.exclusive.erase(
      std::unique(held.exclusive.begin(), held.exclusive.end()),
      held.exclusive.end());
  for (const auto& r : req.reads) {
    if (!std::binary_search(held.exclusive.begin(), held.exclusive.end(),
                            r.key)) {
      held.shared.push_back(r.key);
    }
  }
  std::sort(held.shared.begin(), held.shared.end());
  held.shared.erase(std::unique(held.shared.begin(), held.shared.end()),
                    held.shared.end());

  VoteReply vote;
  vote.rpc_id = req.rpc_id;
  vote.ok = true;

  if (!locks_.lock_all_exclusive(held.exclusive, req.tx,
                                 ctx_.config.lock_timeout)) {
    vote.ok = false;
    vote.fail_reason = VoteFail::kLock;
  } else {
    std::size_t shared_got = 0;
    for (; shared_got < held.shared.size(); ++shared_got) {
      if (!locks_.lock_shared(held.shared[shared_got], req.tx,
                              ctx_.config.lock_timeout)) {
        break;
      }
    }
    if (shared_got < held.shared.size()) {
      for (std::size_t i = 0; i < shared_got; ++i) {
        locks_.unlock_shared(held.shared[i], req.tx);
      }
      locks_.unlock_all_exclusive(held.exclusive, req.tx);
      vote.ok = false;
      vote.fail_reason = VoteFail::kLock;
    } else {
      // All locks held: validate every read against the current version.
      for (const auto& r : req.reads) {
        if (!store_.validate(r.key, r.version)) {
          vote.ok = false;
          vote.fail_reason = VoteFail::kValidation;
          break;
        }
      }
      if (!vote.ok) {
        for (Key k : held.shared) locks_.unlock_shared(k, req.tx);
        locks_.unlock_all_exclusive(held.exclusive, req.tx);
      } else {
        bool decided_meanwhile = false;
        {
          std::lock_guard<std::mutex> lock(prepared_mu_);
          preparing_.erase(req.tx);
          if (decided_.count(req.tx) != 0) {
            decided_meanwhile = true;
          } else {
            prepared_[req.tx] = std::move(held);
          }
        }
        if (decided_meanwhile) {
          // A (necessarily abort) Decide raced past while we validated:
          // release now — nothing will decide this tx again.
          for (Key k : held.shared) locks_.unlock_shared(k, req.tx);
          locks_.unlock_all_exclusive(held.exclusive, req.tx);
          vote.ok = false;
          vote.fail_reason = VoteFail::kLock;
        }
      }
    }
  }
  if (!vote.ok) {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    preparing_.erase(req.tx);
  }
  ctx_.network->send(id_, req.reply_to, std::move(vote));
}

void TwoPcNode::on_decide(DecideMessage&& m) {
  release_prepared(m.tx, m.outcome, m.writes);
  if (m.outcome) stats_.decides_applied.add();
  if (m.rpc_id != 0) {
    ctx_.network->send(id_, m.reply_to, net::DecideAck{m.rpc_id});
  }
}

void TwoPcNode::note_decided_locked(TxId tx) {
  // Paired with on_prepare's dedup gate: only track decisions once
  // deliveries may have been disturbed (see there about recycled tx ids).
  if (!ctx_.network->deliveries_disturbed()) return;
  if (!decided_.insert(tx).second) return;
  decided_fifo_.push_back(tx);
  if (decided_fifo_.size() > kDecidedHorizon) {
    decided_.erase(decided_fifo_.front());
    decided_fifo_.pop_front();
  }
}

void TwoPcNode::release_prepared(TxId tx, bool install,
                                 const std::vector<WriteEntry>& writes) {
  PreparedLocks held;
  {
    std::lock_guard<std::mutex> lock(prepared_mu_);
    // Remember the decision before the lookup so a stale retransmitted
    // Prepare can never re-lock keys after the decision passed through
    // (this also makes duplicated Decide deliveries no-ops).
    note_decided_locked(tx);
    auto it = prepared_.find(tx);
    if (it == prepared_.end()) return;  // voted no / duplicate; nothing held
    held = std::move(it->second);
    prepared_.erase(it);
  }
  if (install) {
    for (const auto& w : writes) {
      store_.install(w.key, w.value);
      stats_.versions_installed.add();
    }
  }
  for (Key k : held.shared) locks_.unlock_shared(k, tx);
  locks_.unlock_all_exclusive(held.exclusive, tx);
}

}  // namespace fwkv
