// Per-node task execution. Every simulated node owns two lanes:
//
//   data lane    - read handlers and prepare handlers; these may block
//                  briefly on per-key lock acquisition (Alg. 3 / Alg. 5);
//   control lane - vote routing, decide, propagate and remove handlers;
//                  these release locks and advance siteVC.
//
// The split guarantees that a data-lane task blocked on a lock can never
// starve the control-lane task that will release it, so the node as a whole
// is deadlock-free by construction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fwkv::net {

/// Fixed-size worker pool over a FIFO queue.
class Executor {
 public:
  explicit Executor(std::size_t threads, const char* name = "exec");
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  void submit(std::function<void()> task);

  /// Tasks queued but not yet started, plus tasks currently running.
  std::size_t in_flight() const;

  /// Reject new work and join workers; queued tasks are still drained.
  void shutdown();

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::atomic<std::size_t> active_{0};
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace fwkv::net
