// Deterministic fault injection for the simulated network.
//
// The paper's system model (§2.1) assumes reliable asynchronous channels;
// a production deployment gets message loss, duplication, reordering,
// partitions and stalled nodes. A FaultPlan describes those adversities and
// the FaultInjector applies them inside SimNetwork's send path so that the
// protocols can be exercised — and their PSI guarantees checked — under
// adverse delivery schedules, reproducibly.
//
// Determinism: every drop/duplicate/reorder decision is a pure function of
// (plan seed, from, to, message class, per-link-per-class message index).
// Thread interleaving changes *which* message gets which index only if the
// application itself is nondeterministic; for a fixed per-link message
// sequence the fault schedule is identical across runs, which is what the
// chaos tests print ("reproduce with seed N") and what the determinism test
// in net_test.cpp pins.
//
// Partitions and pauses are wall-clock windows relative to the network's
// construction: inside a partition window the link drops everything; inside
// a pause window deliveries *to* the paused node are deferred until the
// window closes (a stalled process whose inbox drains at resume).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.hpp"

namespace fwkv::net {

/// Fault probabilities for one message class. All in [0, 1].
struct ClassFaults {
  double drop = 0.0;       // message vanishes
  double duplicate = 0.0;  // a second copy is delivered (independent delay)
  double reorder = 0.0;    // extra delay in (0, reorder_max_extra] is added
};

/// A link outage: messages sent on (a -> b) — and (b -> a) when
/// bidirectional — during [start, start + duration) are dropped.
/// duration <= 0 means the partition never heals.
struct LinkPartition {
  NodeId a = 0;
  NodeId b = 0;
  std::chrono::nanoseconds start{0};
  std::chrono::nanoseconds duration{0};
  bool bidirectional = true;
};

/// A node stall: deliveries to `node` that would land inside
/// [start, start + duration) are deferred to the end of the window.
struct NodePauseWindow {
  NodeId node = 0;
  std::chrono::nanoseconds start{0};
  std::chrono::nanoseconds duration{0};
};

struct FaultPlan {
  /// Master seed; the entire drop/dup/reorder schedule derives from it.
  std::uint64_t seed = 1;
  /// Per-message-class fault probabilities (indexed by MessageType).
  std::array<ClassFaults, kNumMessageTypes> message{};
  /// Upper bound on the extra delay a reordered (or duplicated) message
  /// receives. Bounded so that "eventually delivered" stays bounded.
  std::chrono::nanoseconds reorder_max_extra{std::chrono::microseconds(500)};
  std::vector<LinkPartition> partitions;
  std::vector<NodePauseWindow> pauses;

  /// True when any knob can actually perturb a delivery. When false the
  /// whole fault layer is compiled out of the send path (no-op guarantee).
  bool active() const;

  void set_all(const ClassFaults& f) { message.fill(f); }

  /// Uniform plan: the same drop/dup/reorder probabilities for every class.
  static FaultPlan uniform(std::uint64_t seed, double drop,
                           double duplicate = 0.0, double reorder = 0.0);
};

enum class FaultKind : std::uint8_t {
  kDrop = 0,
  kDuplicate = 1,
  kReorder = 2,
  kPartitionDrop = 3,
  kPauseDeferral = 4,
};
inline constexpr std::size_t kNumFaultKinds = 5;

const char* fault_kind_name(FaultKind k);

/// One injected fault, as observed by SimNetwork::set_fault_hook. The
/// determinism test records these and asserts two same-seed runs produce
/// identical sequences.
struct FaultEvent {
  NodeId from = 0;
  NodeId to = 0;
  MessageType type = MessageType::kReadRequest;
  /// Per-(from, to, class) message index the decision was drawn for.
  std::uint64_t index = 0;
  FaultKind kind = FaultKind::kDrop;
  /// Extra delay in ns (reorder / duplicate-copy delay / pause deferral).
  std::int64_t extra_ns = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint32_t num_nodes);

  /// What happens to one message. Drawn deterministically from the seed and
  /// the per-link message index; `now_ns` (elapsed since network epoch) only
  /// feeds the time-window checks, never the RNG.
  struct Decision {
    bool drop = false;            // random drop (counts as kDrop)
    bool partition_drop = false;  // dropped by an active partition window
    bool duplicate = false;
    std::int64_t extra_ns = 0;      // reorder delay for the original
    std::int64_t dup_extra_ns = 0;  // delay of the duplicate copy
    std::uint64_t index = 0;
  };
  Decision decide(NodeId from, NodeId to, MessageType t, std::int64_t now_ns);

  /// Latest end of any plan pause window covering `delivery_ns` at `node`
  /// (elapsed-ns since epoch); returns `delivery_ns` when none applies.
  std::int64_t pause_end(NodeId node, std::int64_t delivery_ns) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  bool partitioned(NodeId from, NodeId to, std::int64_t now_ns) const;

  FaultPlan plan_;
  std::uint32_t num_nodes_;
  /// Per-(from * num_nodes + to) * kNumMessageTypes message counters.
  std::unique_ptr<std::atomic<std::uint64_t>[]> counters_;
};

}  // namespace fwkv::net
