// The complete wire-message vocabulary of the three protocols (FW-KV,
// Walter, 2PC-baseline). Messages are plain data; the SimNetwork moves them
// between nodes and the nodes' handlers interpret them.
//
// Paper mapping:
//   ReadRequest / ReadReturn   - Alg. 2 line 6-7, Alg. 3 line 19
//   PrepareRequest / VoteReply - Alg. 4 line 12/14, Alg. 5 lines 1-13
//   DecideMessage              - Alg. 4 line 26, Alg. 5 lines 14-26
//   PropagateMessage           - Alg. 4 line 27, Alg. 6 lines 1-4
//   RemoveMessage              - Alg. 4 line 4,  Alg. 6 lines 5-10
#pragma once

#include <cstdint>
#include <variant>
#include <vector>

#include "common/ids.hpp"
#include "common/vector_clock.hpp"

namespace fwkv::net {

/// The subset of a transaction's state a remote read handler needs:
/// identity, read-only flag, current T.VC and T.hasRead.
struct TxDescriptor {
  TxId id;
  bool read_only = false;
  VectorClock vc;
  AccessVector has_read;
};

struct WriteEntry {
  Key key;
  Value value;
};

/// 2PC-baseline read validation: the version id observed at read time.
struct ReadValidationEntry {
  Key key;
  VersionId version = 0;
};

struct ReadRequest {
  std::uint64_t rpc_id = 0;
  NodeId reply_to = 0;
  TxDescriptor tx;
  Key key;
};

struct ReadReturn {
  std::uint64_t rpc_id = 0;
  bool found = false;
  Value value;
  /// Commit vector clock of the returned version (empty for 2PC-baseline).
  VectorClock version_vc;
  VersionId version_id = 0;
  NodeId version_origin = 0;
  SeqNo version_seq = 0;
  /// Freshness instrumentation: id of the newest version present when the
  /// read was served (latest_id - version_id is the staleness gap, §2.4).
  VersionId latest_id = 0;
  /// The serving node's own siteVC entry at read time. Fig. 2: "T1 also
  /// updates T1.VC[2] to the latest timestamp of N2" — the reader's clock
  /// entry for the contacted site advances to the site's current sequence
  /// number, freezing the snapshot at first-contact time.
  SeqNo server_seq = 0;
};

struct PrepareRequest {
  std::uint64_t rpc_id = 0;
  NodeId reply_to = 0;
  TxId tx;
  VectorClock tx_vc;
  /// Writes whose preferred node is the receiver.
  std::vector<WriteEntry> writes;
  /// 2PC-baseline only: reads to validate on the receiver.
  std::vector<ReadValidationEntry> reads;
};

/// Why a participant voted no (for the coordinator's abort statistics).
enum class VoteFail : std::uint8_t { kNone = 0, kLock = 1, kValidation = 2 };

struct VoteReply {
  std::uint64_t rpc_id = 0;
  bool ok = false;
  VoteFail fail_reason = VoteFail::kNone;
  /// FW-KV only: read-only transaction ids found in the version-access-sets
  /// of the written keys (Alg. 5 lines 8-10).
  std::vector<TxId> collected_set;
};

struct DecideMessage {
  /// Non-zero only for the 2PC-baseline, which waits for DecideAck.
  std::uint64_t rpc_id = 0;
  NodeId reply_to = 0;
  TxId tx;
  bool outcome = false;
  /// Coordinator node ("N_j" in Alg. 5 line 14).
  NodeId origin = 0;
  SeqNo seq_no = 0;
  VectorClock commit_vc;
  /// Writes whose preferred node is the receiver (re-sent with the decision
  /// so participants stay stateless between Prepare and Decide).
  std::vector<WriteEntry> writes;
  /// FW-KV: merged anti-dependency set to stamp onto the new versions
  /// (Alg. 5 line 19).
  std::vector<TxId> collected_set;
};

/// Batched commit propagation (Alg. 6 lines 1-4). Walter propagates
/// "periodically"; a message covers the contiguous sequence-number range
/// [from_seq, to_seq] of commits at `origin`, none of which carried a
/// Decide to the receiver (those seqs are covered by their Decides).
struct PropagateMessage {
  NodeId origin = 0;
  SeqNo from_seq = 0;
  SeqNo to_seq = 0;
};

/// 2PC-baseline only: participants acknowledge Decide application so the
/// coordinator completes a full synchronous two-phase round (the PSI
/// systems return to the client after sending Decide, per Alg. 4).
struct DecideAck {
  std::uint64_t rpc_id = 0;
};

/// Read-only commit cleanup (Alg. 4 line 4). Carries the transaction's
/// batched registration buffer for the destination site: every key it read
/// there, flushed once per transaction so the handler can deregister the
/// visible-read traces without a per-read reverse-index entry.
struct RemoveMessage {
  TxId tx;
  std::vector<Key> keys;
};

/// Gap repair under lossy delivery (fault-injection hardening; not part of
/// the paper's reliable-channel model). A receiver that has buffered
/// commit events ahead of its in-order cursor for `origin`'s site asks the
/// origin to replay the missing sequence range [from_seq, to_seq]. The
/// origin re-sends Decides (from its retained commit log) or Propagates for
/// those seqs; redelivery is safe because application is deduplicated by
/// (origin, seq).
struct ResendRequest {
  NodeId requester = 0;
  SeqNo from_seq = 0;
  SeqNo to_seq = 0;
};

using Message = std::variant<ReadRequest, ReadReturn, PrepareRequest,
                             VoteReply, DecideMessage, PropagateMessage,
                             RemoveMessage, DecideAck, ResendRequest>;

/// Stable tags for the codec and for per-class delay/statistics.
enum class MessageType : std::uint8_t {
  kReadRequest = 0,
  kReadReturn = 1,
  kPrepareRequest = 2,
  kVoteReply = 3,
  kDecide = 4,
  kPropagate = 5,
  kRemove = 6,
  kDecideAck = 7,
  kResendRequest = 8,
};
inline constexpr std::size_t kNumMessageTypes = 9;

inline MessageType type_of(const Message& m) {
  return static_cast<MessageType>(m.index());
}

inline const char* type_name(MessageType t) {
  switch (t) {
    case MessageType::kReadRequest:
      return "ReadRequest";
    case MessageType::kReadReturn:
      return "ReadReturn";
    case MessageType::kPrepareRequest:
      return "Prepare";
    case MessageType::kVoteReply:
      return "Vote";
    case MessageType::kDecide:
      return "Decide";
    case MessageType::kPropagate:
      return "Propagate";
    case MessageType::kRemove:
      return "Remove";
    case MessageType::kDecideAck:
      return "DecideAck";
    case MessageType::kResendRequest:
      return "ResendRequest";
  }
  return "?";
}

}  // namespace fwkv::net
