#include "net/delay_queue.hpp"

namespace fwkv::net {

DelayQueue::DelayQueue() : thread_([this] { loop(); }) {}

DelayQueue::~DelayQueue() { shutdown(); }

void DelayQueue::run_after(std::chrono::nanoseconds delay,
                           std::function<void()> fn) {
  run_at(Clock::now() + delay, std::move(fn));
}

void DelayQueue::run_at(Clock::time_point when, std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    queue_.push(Entry{when, next_seq_++, std::move(fn)});
  }
  cv_.notify_one();
}

std::size_t DelayQueue::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void DelayQueue::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_one();
  if (thread_.joinable()) thread_.join();
}

void DelayQueue::loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    if (stop_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      continue;
    }
    const auto when = queue_.top().when;
    if (Clock::now() < when) {
      cv_.wait_until(lock, when);
      continue;
    }
    // const_cast: priority_queue::top() is const but we are about to pop;
    // moving the std::function out avoids a copy.
    auto fn = std::move(const_cast<Entry&>(queue_.top()).fn);
    queue_.pop();
    lock.unlock();
    fn();
    lock.lock();
  }
}

}  // namespace fwkv::net
