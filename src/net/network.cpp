#include "net/network.hpp"

#include <cassert>
#include <thread>

#include "net/codec.hpp"

namespace fwkv::net {

std::optional<Message> RpcCall::await(std::chrono::nanoseconds timeout) {
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait_for(lock, timeout,
                      [&] { return state_->reply.has_value(); });
  return std::move(state_->reply);
}

SimNetwork::SimNetwork(std::uint32_t num_nodes, NetConfig config)
    : num_nodes_(num_nodes),
      config_(config),
      propagate_extra_ns_(config.propagate_extra_delay.count()),
      rpc_shards_(new RpcShard[kRpcShards]),
      epoch_(std::chrono::steady_clock::now()),
      pause_until_ns_(new std::atomic<std::int64_t>[num_nodes]) {
  nodes_.resize(num_nodes);
  for (auto& lanes : nodes_) {
    lanes.data = std::make_unique<Executor>(config_.data_threads, "data");
    lanes.control =
        std::make_unique<Executor>(config_.control_threads, "ctrl");
  }
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    pause_until_ns_[i].store(0, std::memory_order_relaxed);
  }
  if (config_.faults.active()) {
    injector_ = std::make_unique<FaultInjector>(config_.faults, num_nodes);
  }
}

SimNetwork::~SimNetwork() {
  // Stop accepting timer deliveries first so no task lands on a dying
  // executor, then drain the executors.
  timer_.shutdown();
  for (auto& lanes : nodes_) {
    lanes.data->shutdown();
    lanes.control->shutdown();
  }
}

void SimNetwork::register_endpoint(NodeId node, NodeEndpoint* endpoint) {
  assert(node < num_nodes_);
  nodes_[node].endpoint = endpoint;
}

RpcCall SimNetwork::send_request(NodeId from, NodeId to, Message request) {
  RpcCall call;
  call.id_ = next_rpc_id_.fetch_add(1, std::memory_order_relaxed);
  if (auto* rr = std::get_if<ReadRequest>(&request)) {
    rr->rpc_id = call.id_;
    rr->reply_to = from;
  } else if (auto* pr = std::get_if<PrepareRequest>(&request)) {
    pr->rpc_id = call.id_;
    pr->reply_to = from;
  } else if (auto* dm = std::get_if<DecideMessage>(&request)) {
    dm->rpc_id = call.id_;
    dm->reply_to = from;
  } else {
    assert(false && "send_request requires a request-type message");
  }
  auto& shard = rpc_shards_[call.id_ % kRpcShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.map.emplace(call.id_, call.state_);
  }
  send(from, to, std::move(request));
  return call;
}

void SimNetwork::send(NodeId from, NodeId to, Message m) {
  assert(to < num_nodes_);
  {
    std::lock_guard<std::mutex> lock(hook_mu_);
    if (send_hook_) send_hook_(from, to, m);
  }
  sent_by_type_[static_cast<std::size_t>(type_of(m))].add();
  if (config_.serialize_messages) {
    // Round-trip through the codec: realistic marshalling cost and a
    // guarantee the message survives a real wire. The wire buffer is pooled
    // per sending thread so steady-state encoding is allocation-free.
    thread_local std::vector<std::uint8_t> wire_buf;
    encode_message_into(m, wire_buf);
    bytes_sent_.add(wire_buf.size());
    auto decoded = decode_message(wire_buf);
    assert(decoded.has_value());
    m = std::move(*decoded);
  }
  // Loopback messages (coordinator to itself, e.g. the self-Decide of
  // Alg. 4 line 26) never hit the wire: this is what makes Walter's
  // preferred-site fast local commit fast. They are also never faulted.
  auto latency =
      from == to ? std::chrono::nanoseconds(0) : latency_for(m, from, to);
  if (injector_ && from != to) {
    const MessageType t = type_of(m);
    auto d = injector_->decide(from, to, t, elapsed_ns());
    if (d.drop || d.partition_drop) {
      note_fault({from, to, t, d.index,
                  d.partition_drop ? FaultKind::kPartitionDrop
                                   : FaultKind::kDrop,
                  0});
      return;
    }
    if (d.duplicate) {
      note_fault({from, to, t, d.index, FaultKind::kDuplicate,
                  d.dup_extra_ns});
      Message copy = m;
      enqueue(from, to, std::move(copy),
              latency + std::chrono::nanoseconds(d.dup_extra_ns));
    }
    if (d.extra_ns > 0) {
      note_fault({from, to, t, d.index, FaultKind::kReorder, d.extra_ns});
      latency += std::chrono::nanoseconds(d.extra_ns);
    }
  }
  enqueue(from, to, std::move(m), latency);
}

void SimNetwork::enqueue(NodeId from, NodeId to, Message m,
                         std::chrono::nanoseconds latency) {
  if (injector_ || any_pause_.load(std::memory_order_relaxed)) {
    // Pause deferral: a delivery landing inside a pause window of the
    // destination is pushed to the window's end. All deferred messages of a
    // link share that deadline, so the DelayQueue's submission-order
    // tie-break drains the inbox in send order at resume.
    const std::int64_t deliver_at = elapsed_ns() + latency.count();
    std::int64_t end = deliver_at;
    if (injector_) end = injector_->pause_end(to, deliver_at);
    const std::int64_t runtime_end =
        pause_until_ns_[to].load(std::memory_order_acquire);
    if (runtime_end > deliver_at && runtime_end > end) end = runtime_end;
    if (end > deliver_at) {
      note_fault({from, to, type_of(m), 0, FaultKind::kPauseDeferral,
                  end - deliver_at});
      latency += std::chrono::nanoseconds(end - deliver_at);
    }
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (latency.count() == 0) {
    deliver(from, to, std::move(m));
  } else {
    timer_.run_after(latency, [this, from, to, m = std::move(m)]() mutable {
      deliver(from, to, std::move(m));
    });
  }
}

void SimNetwork::pause_node(NodeId node, std::chrono::nanoseconds duration) {
  assert(node < num_nodes_);
  const std::int64_t end = elapsed_ns() + duration.count();
  std::int64_t cur = pause_until_ns_[node].load(std::memory_order_relaxed);
  while (cur < end && !pause_until_ns_[node].compare_exchange_weak(
                          cur, end, std::memory_order_release)) {
  }
  any_pause_.store(true, std::memory_order_release);
}

void SimNetwork::cancel_rpc(const RpcCall& call) {
  if (call.id_ == 0) return;
  auto& shard = rpc_shards_[call.id_ % kRpcShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.erase(call.id_);
}

std::int64_t SimNetwork::elapsed_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void SimNetwork::note_fault(const FaultEvent& ev) {
  fault_counts_[static_cast<std::size_t>(ev.kind)].add();
  std::lock_guard<std::mutex> lock(hook_mu_);
  if (fault_hook_) fault_hook_(ev);
}

std::uint64_t SimNetwork::faults_injected(FaultKind k) const {
  return fault_counts_[static_cast<std::size_t>(k)].get();
}

void SimNetwork::set_fault_hook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  fault_hook_ = std::move(hook);
}

void SimNetwork::deliver(NodeId from, NodeId to, Message m) {
  // Replies complete pending RPCs without touching the endpoint.
  std::uint64_t rpc_id = 0;
  if (const auto* rr = std::get_if<ReadReturn>(&m)) {
    rpc_id = rr->rpc_id;
  } else if (const auto* vr = std::get_if<VoteReply>(&m)) {
    rpc_id = vr->rpc_id;
  } else if (const auto* da = std::get_if<DecideAck>(&m)) {
    rpc_id = da->rpc_id;
  }
  if (rpc_id != 0) {
    std::shared_ptr<RpcCall::State> state;
    auto& shard = rpc_shards_[rpc_id % kRpcShards];
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      auto it = shard.map.find(rpc_id);
      if (it != shard.map.end()) {
        state = std::move(it->second);
        shard.map.erase(it);
      }
    }
    if (state) {
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->reply = std::move(m);
      }
      state->cv.notify_one();
    }
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }

  auto& lanes = nodes_[to];
  assert(lanes.endpoint != nullptr);
  const MessageType t = type_of(m);
  const bool control = t == MessageType::kDecide ||
                       t == MessageType::kPropagate ||
                       t == MessageType::kRemove ||
                       t == MessageType::kResendRequest;
  if (control) {
    // Control handlers (decide/propagate/remove) are non-blocking by
    // design (in-order application is event-driven, Alg. 5 line 16 /
    // Alg. 6 line 2 waits are buffered) — run them inline on the
    // delivering thread. Only read/prepare handlers, which may wait on
    // per-key locks, need worker threads; the split guarantees a blocked
    // read can never starve the decide that will release its lock.
    lanes.endpoint->handle_message(std::move(m), from);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    return;
  }
  auto task = [this, endpoint = lanes.endpoint, from, m = std::move(m)]() mutable {
    endpoint->handle_message(std::move(m), from);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  };
  lanes.data->submit(std::move(task));
}

std::chrono::nanoseconds SimNetwork::latency_for(const Message& m,
                                                 NodeId from, NodeId to) {
  auto latency = config_.one_way_latency;
  if (!config_.link_latency.empty()) {
    latency = config_.link_latency[from][to];
  }
  if (std::holds_alternative<PropagateMessage>(m)) {
    latency += std::chrono::nanoseconds(
        propagate_extra_ns_.load(std::memory_order_relaxed));
  }
  if (config_.jitter.count() > 0) {
    // SplitMix64 step: cheap, lock-free uniform jitter.
    std::uint64_t x =
        jitter_state_.fetch_add(0x9E3779B97F4A7C15ull,
                                std::memory_order_relaxed);
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    x ^= x >> 31;
    latency += std::chrono::nanoseconds(
        static_cast<std::int64_t>(x % static_cast<std::uint64_t>(
                                          config_.jitter.count() + 1)));
  }
  return latency;
}

std::vector<std::vector<std::chrono::nanoseconds>>
SimNetwork::two_region_matrix(std::uint32_t num_nodes, std::uint32_t split,
                              std::chrono::nanoseconds local,
                              std::chrono::nanoseconds wan) {
  std::vector<std::vector<std::chrono::nanoseconds>> matrix(
      num_nodes, std::vector<std::chrono::nanoseconds>(num_nodes, local));
  for (std::uint32_t a = 0; a < num_nodes; ++a) {
    for (std::uint32_t b = 0; b < num_nodes; ++b) {
      const bool a_west = a < split;
      const bool b_west = b < split;
      if (a_west != b_west) matrix[a][b] = wan;
    }
  }
  return matrix;
}

void SimNetwork::set_propagate_extra_delay(std::chrono::nanoseconds d) {
  propagate_extra_ns_.store(d.count(), std::memory_order_relaxed);
}

void SimNetwork::schedule(std::chrono::nanoseconds delay,
                          std::function<void()> fn) {
  timer_.run_after(delay, std::move(fn));
}

void SimNetwork::set_send_hook(SendHook hook) {
  std::lock_guard<std::mutex> lock(hook_mu_);
  send_hook_ = std::move(hook);
}

std::uint64_t SimNetwork::messages_sent(MessageType t) const {
  return sent_by_type_[static_cast<std::size_t>(t)].get();
}

std::uint64_t SimNetwork::bytes_sent() const { return bytes_sent_.get(); }

bool SimNetwork::quiet_now() const {
  if (in_flight_.load(std::memory_order_acquire) != 0) return false;
  for (const auto& lanes : nodes_) {
    if (lanes.endpoint != nullptr && lanes.endpoint->pending_work() > 0) {
      return false;
    }
  }
  return true;
}

bool SimNetwork::wait_quiescent(std::chrono::nanoseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    if (quiet_now()) {
      // Double-check after a short pause: a handler might be about to send,
      // or a task queued on an executor during the pause may surface as
      // pending work — the recheck must repeat the full sweep, not just
      // re-read the in-flight counter.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
      if (quiet_now()) return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

}  // namespace fwkv::net
