// Timer service used by the SimNetwork to deliver messages after their
// simulated latency (and to inject the delayed-Propagate scenario of
// Figs. 7 / 9a).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fwkv::net {

/// Single-threaded scheduler: run_at(t, fn) executes fn on the dispatcher
/// thread at (or shortly after) time t. Entries with equal deadlines run in
/// submission order, which keeps same-latency FIFO channels FIFO.
class DelayQueue {
 public:
  using Clock = std::chrono::steady_clock;

  DelayQueue();
  ~DelayQueue();

  DelayQueue(const DelayQueue&) = delete;
  DelayQueue& operator=(const DelayQueue&) = delete;

  void run_after(std::chrono::nanoseconds delay, std::function<void()> fn);
  void run_at(Clock::time_point when, std::function<void()> fn);

  /// Number of entries not yet dispatched (for quiescence checks in tests).
  std::size_t pending() const;

  /// Stop the dispatcher; pending entries are dropped.
  void shutdown();

 private:
  struct Entry {
    Clock::time_point when;
    std::uint64_t seq;  // tie-break: submission order
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.when != b.when ? a.when > b.when : a.seq > b.seq;
    }
  };

  void loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace fwkv::net
