#include "net/codec.hpp"

namespace fwkv::net {

void Encoder::put_u8(std::uint8_t v) { buf_.push_back(v); }

void Encoder::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Encoder::put_string(const std::string& s) {
  put_u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void Encoder::put_vc(const VectorClock& vc) {
  put_u32(static_cast<std::uint32_t>(vc.size()));
  for (std::size_t i = 0; i < vc.size(); ++i) put_u64(vc[i]);
}

void Encoder::put_access_vector(const AccessVector& av) {
  put_u32(static_cast<std::uint32_t>(av.size()));
  for (std::size_t i = 0; i < av.size(); ++i) put_bool(av.get(i));
}

bool Decoder::need(std::size_t n) {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Decoder::get_u8() {
  if (!need(1)) return 0;
  return buf_[pos_++];
}

std::uint32_t Decoder::get_u32() {
  if (!need(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::uint64_t Decoder::get_u64() {
  if (!need(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf_[pos_++]) << (8 * i);
  return v;
}

std::string Decoder::get_string() {
  const std::uint32_t len = get_u32();
  if (!need(len)) return {};
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return s;
}

VectorClock Decoder::get_vc() {
  const std::uint32_t n = get_u32();
  if (!ok_ || n > (1u << 20)) {  // sanity bound: clusters are small
    ok_ = false;
    return {};
  }
  VectorClock vc(n);
  for (std::uint32_t i = 0; i < n; ++i) vc[i] = get_u64();
  return vc;
}

AccessVector Decoder::get_access_vector() {
  const std::uint32_t n = get_u32();
  if (!ok_ || n > (1u << 20)) {
    ok_ = false;
    return {};
  }
  AccessVector av(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (get_bool()) av.set(i);
  }
  return av;
}

namespace {

void encode_tx_descriptor(Encoder& e, const TxDescriptor& tx) {
  e.put_u64(tx.id.raw);
  e.put_bool(tx.read_only);
  e.put_vc(tx.vc);
  e.put_access_vector(tx.has_read);
}

TxDescriptor decode_tx_descriptor(Decoder& d) {
  TxDescriptor tx;
  tx.id = TxId{d.get_u64()};
  tx.read_only = d.get_bool();
  tx.vc = d.get_vc();
  tx.has_read = d.get_access_vector();
  return tx;
}

void encode_writes(Encoder& e, const std::vector<WriteEntry>& writes) {
  e.put_u32(static_cast<std::uint32_t>(writes.size()));
  for (const auto& w : writes) {
    e.put_u64(w.key);
    e.put_string(w.value);
  }
}

std::vector<WriteEntry> decode_writes(Decoder& d) {
  const std::uint32_t n = d.get_u32();
  std::vector<WriteEntry> writes;
  if (!d.ok() || n > (1u << 24)) return writes;
  writes.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    WriteEntry w;
    w.key = d.get_u64();
    w.value = d.get_string();
    writes.push_back(std::move(w));
  }
  return writes;
}

void encode_txids(Encoder& e, const std::vector<TxId>& ids) {
  e.put_u32(static_cast<std::uint32_t>(ids.size()));
  for (TxId id : ids) e.put_u64(id.raw);
}

std::vector<TxId> decode_txids(Decoder& d) {
  const std::uint32_t n = d.get_u32();
  std::vector<TxId> ids;
  if (!d.ok() || n > (1u << 24)) return ids;
  ids.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) ids.push_back(TxId{d.get_u64()});
  return ids;
}

struct EncodeVisitor {
  Encoder& e;

  void operator()(const ReadRequest& m) const {
    e.put_u64(m.rpc_id);
    e.put_u32(m.reply_to);
    encode_tx_descriptor(e, m.tx);
    e.put_u64(m.key);
  }
  void operator()(const ReadReturn& m) const {
    e.put_u64(m.rpc_id);
    e.put_bool(m.found);
    e.put_string(m.value);
    e.put_vc(m.version_vc);
    e.put_u64(m.version_id);
    e.put_u32(m.version_origin);
    e.put_u64(m.version_seq);
    e.put_u64(m.latest_id);
    e.put_u64(m.server_seq);
  }
  void operator()(const PrepareRequest& m) const {
    e.put_u64(m.rpc_id);
    e.put_u32(m.reply_to);
    e.put_u64(m.tx.raw);
    e.put_vc(m.tx_vc);
    encode_writes(e, m.writes);
    e.put_u32(static_cast<std::uint32_t>(m.reads.size()));
    for (const auto& r : m.reads) {
      e.put_u64(r.key);
      e.put_u64(r.version);
    }
  }
  void operator()(const VoteReply& m) const {
    e.put_u64(m.rpc_id);
    e.put_bool(m.ok);
    e.put_u8(static_cast<std::uint8_t>(m.fail_reason));
    encode_txids(e, m.collected_set);
  }
  void operator()(const DecideMessage& m) const {
    e.put_u64(m.rpc_id);
    e.put_u32(m.reply_to);
    e.put_u64(m.tx.raw);
    e.put_bool(m.outcome);
    e.put_u32(m.origin);
    e.put_u64(m.seq_no);
    e.put_vc(m.commit_vc);
    encode_writes(e, m.writes);
    encode_txids(e, m.collected_set);
  }
  void operator()(const PropagateMessage& m) const {
    e.put_u32(m.origin);
    e.put_u64(m.from_seq);
    e.put_u64(m.to_seq);
  }
  void operator()(const RemoveMessage& m) const {
    e.put_u64(m.tx.raw);
    e.put_u32(static_cast<std::uint32_t>(m.keys.size()));
    for (Key k : m.keys) e.put_u64(k);
  }
  void operator()(const DecideAck& m) const { e.put_u64(m.rpc_id); }
  void operator()(const ResendRequest& m) const {
    e.put_u32(m.requester);
    e.put_u64(m.from_seq);
    e.put_u64(m.to_seq);
  }
};

}  // namespace

std::vector<std::uint8_t> encode_message(const Message& m) {
  Encoder e;
  e.put_u8(static_cast<std::uint8_t>(type_of(m)));
  std::visit(EncodeVisitor{e}, m);
  return e.take();
}

void encode_message_into(const Message& m, std::vector<std::uint8_t>& out) {
  Encoder e(std::move(out));
  e.put_u8(static_cast<std::uint8_t>(type_of(m)));
  std::visit(EncodeVisitor{e}, m);
  out = e.take();
}

std::optional<Message> decode_message(const std::vector<std::uint8_t>& bytes) {
  Decoder d(bytes);
  const auto tag = d.get_u8();
  if (!d.ok() || tag >= kNumMessageTypes) return std::nullopt;
  Message out;
  switch (static_cast<MessageType>(tag)) {
    case MessageType::kReadRequest: {
      ReadRequest m;
      m.rpc_id = d.get_u64();
      m.reply_to = d.get_u32();
      m.tx = decode_tx_descriptor(d);
      m.key = d.get_u64();
      out = std::move(m);
      break;
    }
    case MessageType::kReadReturn: {
      ReadReturn m;
      m.rpc_id = d.get_u64();
      m.found = d.get_bool();
      m.value = d.get_string();
      m.version_vc = d.get_vc();
      m.version_id = d.get_u64();
      m.version_origin = d.get_u32();
      m.version_seq = d.get_u64();
      m.latest_id = d.get_u64();
      m.server_seq = d.get_u64();
      out = std::move(m);
      break;
    }
    case MessageType::kPrepareRequest: {
      PrepareRequest m;
      m.rpc_id = d.get_u64();
      m.reply_to = d.get_u32();
      m.tx = TxId{d.get_u64()};
      m.tx_vc = d.get_vc();
      m.writes = decode_writes(d);
      const std::uint32_t nr = d.get_u32();
      if (d.ok() && nr <= (1u << 24)) {
        m.reads.reserve(nr);
        for (std::uint32_t i = 0; i < nr; ++i) {
          ReadValidationEntry r;
          r.key = d.get_u64();
          r.version = d.get_u64();
          m.reads.push_back(r);
        }
      }
      out = std::move(m);
      break;
    }
    case MessageType::kVoteReply: {
      VoteReply m;
      m.rpc_id = d.get_u64();
      m.ok = d.get_bool();
      m.fail_reason = static_cast<VoteFail>(d.get_u8());
      m.collected_set = decode_txids(d);
      out = std::move(m);
      break;
    }
    case MessageType::kDecide: {
      DecideMessage m;
      m.rpc_id = d.get_u64();
      m.reply_to = d.get_u32();
      m.tx = TxId{d.get_u64()};
      m.outcome = d.get_bool();
      m.origin = d.get_u32();
      m.seq_no = d.get_u64();
      m.commit_vc = d.get_vc();
      m.writes = decode_writes(d);
      m.collected_set = decode_txids(d);
      out = std::move(m);
      break;
    }
    case MessageType::kPropagate: {
      PropagateMessage m;
      m.origin = d.get_u32();
      m.from_seq = d.get_u64();
      m.to_seq = d.get_u64();
      out = m;
      break;
    }
    case MessageType::kRemove: {
      RemoveMessage m;
      m.tx = TxId{d.get_u64()};
      const std::uint32_t n = d.get_u32();
      if (d.ok() && n <= (1u << 24)) {
        m.keys.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) m.keys.push_back(d.get_u64());
      }
      out = std::move(m);
      break;
    }
    case MessageType::kDecideAck: {
      DecideAck m;
      m.rpc_id = d.get_u64();
      out = m;
      break;
    }
    case MessageType::kResendRequest: {
      ResendRequest m;
      m.requester = d.get_u32();
      m.from_seq = d.get_u64();
      m.to_seq = d.get_u64();
      out = m;
      break;
    }
  }
  if (!d.ok() || !d.exhausted()) return std::nullopt;
  return out;
}

}  // namespace fwkv::net
