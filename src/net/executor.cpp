#include "net/executor.hpp"

namespace fwkv::net {

Executor::Executor(std::size_t threads, const char* /*name*/) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Executor::~Executor() { shutdown(); }

void Executor::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

std::size_t Executor::in_flight() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + active_.load(std::memory_order_relaxed);
}

void Executor::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void Executor::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      active_.fetch_add(1, std::memory_order_relaxed);
    }
    task();
    active_.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace fwkv::net
