// Binary wire codec for the message set. The in-process SimNetwork can pass
// messages by value, but real deployments serialize; encoding through this
// codec (SimConfig::serialize_messages) keeps the message structs honest
// (no hidden pointers) and gives the benchmarks a realistic marshalling cost.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/message.hpp"

namespace fwkv::net {

/// Append-only little-endian byte writer. Default-constructed it owns a
/// fresh buffer; the adopting constructor reuses a caller-provided one
/// (cleared, capacity kept) so steady-state encoding stops heap-allocating.
class Encoder {
 public:
  Encoder() = default;
  explicit Encoder(std::vector<std::uint8_t>&& reuse) : buf_(std::move(reuse)) {
    buf_.clear();
  }

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(const std::string& s);
  void put_vc(const VectorClock& vc);
  void put_access_vector(const AccessVector& av);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader; any under-run marks the decoder failed and all
/// subsequent reads return zero values.
class Decoder {
 public:
  explicit Decoder(const std::vector<std::uint8_t>& buf) : buf_(buf) {}

  std::uint8_t get_u8();
  std::uint32_t get_u32();
  std::uint64_t get_u64();
  bool get_bool() { return get_u8() != 0; }
  std::string get_string();
  VectorClock get_vc();
  AccessVector get_access_vector();

  bool ok() const { return ok_; }
  bool exhausted() const { return pos_ == buf_.size(); }

 private:
  bool need(std::size_t n);

  const std::vector<std::uint8_t>& buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

/// Serialize any protocol message, prefixed with its MessageType tag.
std::vector<std::uint8_t> encode_message(const Message& m);

/// Same, but into a reusable buffer (cleared first, capacity retained).
/// Hot senders keep one per thread so per-message encoding is allocation-
/// free once the buffer has warmed up.
void encode_message_into(const Message& m, std::vector<std::uint8_t>& out);

/// Parse a message; nullopt on malformed input (wrong tag, truncation,
/// trailing garbage).
std::optional<Message> decode_message(const std::vector<std::uint8_t>& bytes);

}  // namespace fwkv::net
