#include "net/fault.hpp"

namespace fwkv::net {
namespace {

// SplitMix64 finalizer: a high-quality 64 -> 64 bit mix. Each fault draw
// hashes (seed, link, class, index) through it, so the schedule is a pure
// function of the plan — no shared RNG stream that thread timing could skew.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double unit_double(std::uint64_t x) {
  // 53 high bits -> [0, 1).
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

bool in_window(std::int64_t t, std::chrono::nanoseconds start,
               std::chrono::nanoseconds duration) {
  if (t < start.count()) return false;
  if (duration.count() <= 0) return true;  // never heals
  return t < (start + duration).count();
}

}  // namespace

bool FaultPlan::active() const {
  for (const auto& f : message) {
    if (f.drop > 0.0 || f.duplicate > 0.0 || f.reorder > 0.0) return true;
  }
  return !partitions.empty() || !pauses.empty();
}

FaultPlan FaultPlan::uniform(std::uint64_t seed, double drop, double duplicate,
                             double reorder) {
  FaultPlan plan;
  plan.seed = seed;
  plan.set_all(ClassFaults{drop, duplicate, reorder});
  return plan;
}

const char* fault_kind_name(FaultKind k) {
  switch (k) {
    case FaultKind::kDrop:
      return "drop";
    case FaultKind::kDuplicate:
      return "duplicate";
    case FaultKind::kReorder:
      return "reorder";
    case FaultKind::kPartitionDrop:
      return "partition-drop";
    case FaultKind::kPauseDeferral:
      return "pause-deferral";
  }
  return "?";
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint32_t num_nodes)
    : plan_(std::move(plan)),
      num_nodes_(num_nodes),
      counters_(new std::atomic<std::uint64_t>[static_cast<std::size_t>(
          num_nodes) * num_nodes * kNumMessageTypes]) {
  const std::size_t n =
      static_cast<std::size_t>(num_nodes) * num_nodes * kNumMessageTypes;
  for (std::size_t i = 0; i < n; ++i) {
    counters_[i].store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::partitioned(NodeId from, NodeId to,
                                std::int64_t now_ns) const {
  for (const auto& p : plan_.partitions) {
    const bool hit = (p.a == from && p.b == to) ||
                     (p.bidirectional && p.a == to && p.b == from);
    if (hit && in_window(now_ns, p.start, p.duration)) return true;
  }
  return false;
}

std::int64_t FaultInjector::pause_end(NodeId node,
                                      std::int64_t delivery_ns) const {
  std::int64_t end = delivery_ns;
  for (const auto& p : plan_.pauses) {
    if (p.node != node) continue;
    if (!in_window(delivery_ns, p.start, p.duration)) continue;
    const std::int64_t w_end = (p.start + p.duration).count();
    if (p.duration.count() > 0 && w_end > end) end = w_end;
  }
  return end;
}

FaultInjector::Decision FaultInjector::decide(NodeId from, NodeId to,
                                              MessageType t,
                                              std::int64_t now_ns) {
  Decision d;
  const std::size_t type_idx = static_cast<std::size_t>(t);
  const std::size_t slot =
      (static_cast<std::size_t>(from) * num_nodes_ + to) * kNumMessageTypes +
      type_idx;
  d.index = counters_[slot].fetch_add(1, std::memory_order_relaxed);

  if (partitioned(from, to, now_ns)) {
    d.partition_drop = true;
    return d;
  }

  const ClassFaults& f = plan_.message[type_idx];
  if (f.drop <= 0.0 && f.duplicate <= 0.0 && f.reorder <= 0.0) return d;

  // Independent draws per fault dimension, all derived from the same
  // (seed, link, class, index) key with distinct stream tags.
  const std::uint64_t key =
      mix64(plan_.seed) ^ mix64((static_cast<std::uint64_t>(from) << 40) ^
                                (static_cast<std::uint64_t>(to) << 16) ^
                                type_idx) ^
      mix64(d.index * 0xA24BAED4963EE407ull);
  const std::uint64_t max_extra = static_cast<std::uint64_t>(
      plan_.reorder_max_extra.count() > 0 ? plan_.reorder_max_extra.count()
                                          : 1);
  if (f.drop > 0.0 && unit_double(mix64(key ^ 0x1111)) < f.drop) {
    d.drop = true;
    return d;  // a dropped message is neither duplicated nor reordered
  }
  if (f.duplicate > 0.0 && unit_double(mix64(key ^ 0x2222)) < f.duplicate) {
    d.duplicate = true;
    d.dup_extra_ns =
        static_cast<std::int64_t>(1 + mix64(key ^ 0x3333) % max_extra);
  }
  if (f.reorder > 0.0 && unit_double(mix64(key ^ 0x4444)) < f.reorder) {
    d.extra_ns =
        static_cast<std::int64_t>(1 + mix64(key ^ 0x5555) % max_extra);
  }
  return d;
}

}  // namespace fwkv::net
