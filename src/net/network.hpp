// In-process simulated cluster network.
//
// Faithful to the paper's system model (§2.1): nodes share no memory (all
// interaction is through Message values), channels are reliable and
// asynchronous, and there is no bound on delivery delay. The simulation
// substitutes CloudLab's 10 Gb/s fabric (~20 us one-way) with a DelayQueue
// that delivers each message after a configurable latency; the delayed-
// Propagate experiments (Figs. 7, 9a) add a per-class extra delay exactly as
// the paper "intentionally delays the asynchronous propagate messages".
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/histogram.hpp"
#include "net/delay_queue.hpp"
#include "net/executor.hpp"
#include "net/fault.hpp"
#include "net/message.hpp"

namespace fwkv::net {

struct NetConfig {
  /// One-way delivery latency applied to every message.
  std::chrono::nanoseconds one_way_latency{std::chrono::microseconds(20)};
  /// Additional latency applied to Propagate messages only (Fig. 7/9a knob).
  std::chrono::nanoseconds propagate_extra_delay{0};
  /// Uniform jitter in [0, jitter] added per message (network variance).
  std::chrono::nanoseconds jitter{0};
  /// Optional per-link one-way latency override: entry [from][to]
  /// replaces one_way_latency when non-negative. Lets experiments model
  /// geo-distributed regions (Walter's original deployment target).
  /// Empty = uniform latency.
  std::vector<std::vector<std::chrono::nanoseconds>> link_latency;
  /// Round-trip every message through the binary codec. Costs CPU; on by
  /// default in tests, off in throughput benchmarks.
  bool serialize_messages = false;
  /// Worker threads per node for read/prepare handlers (these may block
  /// briefly on per-key locks). Decide/propagate/remove handlers are
  /// non-blocking and run inline on the delivering thread.
  std::size_t data_threads = 3;
  /// Spare worker lane (kept for handlers that must not run inline).
  std::size_t control_threads = 1;
  /// Deterministic fault injection (chaos testing). The default plan is
  /// inert, in which case the fault layer is never consulted on the send
  /// path (no-op guarantee for benchmarks and the existing test suite).
  /// Loopback (from == to) traffic is never faulted: a node does not lose
  /// messages to itself.
  FaultPlan faults;
};

/// Implemented by protocol nodes; invoked on the destination node's
/// executor lanes.
class NodeEndpoint {
 public:
  virtual ~NodeEndpoint() = default;
  virtual void handle_message(Message msg, NodeId from) = 0;
  /// Work buffered inside the node waiting for in-order application
  /// (pending Decide/Propagate). Used by quiescence detection.
  virtual std::size_t pending_work() const = 0;
};

/// Blocking completion handle for one request/reply exchange.
class RpcCall {
 public:
  /// Blocks until the reply arrives or the timeout elapses.
  std::optional<Message> await(std::chrono::nanoseconds timeout);

 private:
  friend class SimNetwork;
  struct State {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<Message> reply;
  };
  std::shared_ptr<State> state_ = std::make_shared<State>();
  std::uint64_t id_ = 0;
};

class SimNetwork {
 public:
  SimNetwork(std::uint32_t num_nodes, NetConfig config);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  std::uint32_t num_nodes() const { return num_nodes_; }
  const NetConfig& config() const { return config_; }

  void register_endpoint(NodeId node, NodeEndpoint* endpoint);

  /// Begin a request/reply exchange: stamps `rpc_id` into the request (the
  /// caller's message must carry an rpc_id field), registers the completion
  /// slot, then sends. ReadReturn / VoteReply messages with a matching
  /// rpc_id complete the call instead of reaching the endpoint handler.
  RpcCall send_request(NodeId from, NodeId to, Message request);

  /// Fire-and-forget (Decide, Propagate, Remove, and replies).
  void send(NodeId from, NodeId to, Message m);

  /// Abandon a pending request: the completion slot is removed so a late
  /// reply is discarded instead of leaking a table entry. Callers use this
  /// before retrying a timed-out RPC with a fresh id.
  void cancel_rpc(const RpcCall& call);

  /// True when a FaultPlan is in effect. Protocol nodes gate their
  /// recovery machinery (acked decides, gap watchdogs, payload retention)
  /// on this so the fault-free fast path stays untouched.
  bool faults_active() const { return injector_ != nullptr; }

  /// True once any delivery may have been deferred or lost: an active
  /// injector, or pause_node having ever been used. Pause deferral can land
  /// a Prepare and its (timeout-abort) Decide at the same instant on
  /// different executor lanes, so the tx-id dedup that guards against the
  /// Decide overtaking the Prepare must be live here too — while the
  /// retry/backoff machinery stays keyed on faults_active().
  bool deliveries_disturbed() const {
    return injector_ != nullptr || any_pause_.load(std::memory_order_relaxed);
  }

  /// Pause a node at runtime: deliveries to `node` that would land within
  /// the next `duration` are deferred to the end of the window (inbox
  /// drains at resume, in per-link order). Usable without a FaultPlan.
  void pause_node(NodeId node, std::chrono::nanoseconds duration);

  /// Total faults injected so far, by kind.
  std::uint64_t faults_injected(FaultKind k) const;

  /// Test hook: observe every injected fault (called inline at send time).
  using FaultHook = std::function<void(const FaultEvent&)>;
  void set_fault_hook(FaultHook hook);

  /// Change the Propagate-delay knob at runtime (delayed-propagate sweeps).
  void set_propagate_extra_delay(std::chrono::nanoseconds d);

  /// Run `fn` on the timer thread after `delay` (used by the nodes'
  /// periodic propagation flush). Dropped silently after shutdown.
  void schedule(std::chrono::nanoseconds delay, std::function<void()> fn);

  /// Test hook: observe every message at send time (called inline).
  using SendHook =
      std::function<void(NodeId from, NodeId to, const Message& m)>;
  void set_send_hook(SendHook hook);

  /// Messages sent per type and serialized bytes (0 unless serializing).
  std::uint64_t messages_sent(MessageType t) const;
  std::uint64_t bytes_sent() const;

  /// True when no message is in flight and no endpoint has pending buffered
  /// work. Spin-waits up to `timeout`; returns false on timeout.
  bool wait_quiescent(std::chrono::nanoseconds timeout);

  /// Build a two-region latency matrix: nodes [0, split) form region A,
  /// the rest region B; intra-region links use `local`, cross-region links
  /// use `wan`.
  static std::vector<std::vector<std::chrono::nanoseconds>>
  two_region_matrix(std::uint32_t num_nodes, std::uint32_t split,
                    std::chrono::nanoseconds local,
                    std::chrono::nanoseconds wan);

 private:
  void deliver(NodeId from, NodeId to, Message m);
  /// Counts the message in flight and hands it to the timer (or delivers
  /// inline at zero latency). Applies pause-window deferral.
  void enqueue(NodeId from, NodeId to, Message m,
               std::chrono::nanoseconds latency);
  void note_fault(const FaultEvent& ev);
  /// Nanoseconds since this network was constructed (fault-window clock).
  std::int64_t elapsed_ns() const;
  /// One full quiescence sweep: no message in flight AND no endpoint with
  /// buffered pending work.
  bool quiet_now() const;
  std::chrono::nanoseconds latency_for(const Message& m, NodeId from,
                                       NodeId to);

  const std::uint32_t num_nodes_;
  NetConfig config_;
  std::atomic<std::int64_t> propagate_extra_ns_;

  struct NodeLanes {
    std::unique_ptr<Executor> data;
    std::unique_ptr<Executor> control;
    NodeEndpoint* endpoint = nullptr;
  };
  std::vector<NodeLanes> nodes_;

  DelayQueue timer_;

  // Pending RPC table, sharded to keep the send path scalable.
  static constexpr std::size_t kRpcShards = 64;
  struct RpcShard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::shared_ptr<RpcCall::State>> map;
  };
  std::unique_ptr<RpcShard[]> rpc_shards_;
  std::atomic<std::uint64_t> next_rpc_id_{1};

  std::atomic<std::int64_t> in_flight_{0};
  std::array<Counter, kNumMessageTypes> sent_by_type_;
  Counter bytes_sent_;
  std::atomic<std::uint64_t> jitter_state_{0x9E3779B97F4A7C15ull};

  // Fault layer. injector_ stays null for an inert plan so the send path
  // pays one branch. pause_until_ns_ holds runtime pause_node() windows;
  // any_pause_ makes the common no-pause case a relaxed bool load.
  const std::chrono::steady_clock::time_point epoch_;
  std::unique_ptr<FaultInjector> injector_;
  std::unique_ptr<std::atomic<std::int64_t>[]> pause_until_ns_;
  std::atomic<bool> any_pause_{false};
  std::array<Counter, kNumFaultKinds> fault_counts_;

  SendHook send_hook_;
  FaultHook fault_hook_;
  mutable std::mutex hook_mu_;
};

}  // namespace fwkv::net
