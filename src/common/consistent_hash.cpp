#include "common/consistent_hash.hpp"

#include <algorithm>
#include <cassert>

namespace fwkv {

std::uint64_t hash_key(Key key) {
  std::uint64_t x = key + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

ConsistentHashRing::ConsistentHashRing(std::uint32_t num_nodes,
                                       std::uint32_t vnodes_per_node)
    : num_nodes_(num_nodes) {
  assert(num_nodes > 0);
  assert(vnodes_per_node > 0);
  ring_.reserve(static_cast<std::size_t>(num_nodes) * vnodes_per_node);
  for (std::uint32_t n = 0; n < num_nodes; ++n) {
    for (std::uint32_t v = 0; v < vnodes_per_node; ++v) {
      // Derive the vnode position from (node, vnode) so every cluster member
      // computes an identical ring.
      std::uint64_t h =
          hash_key((static_cast<std::uint64_t>(n) << 32) | (v + 1));
      ring_.push_back(Point{h, n});
    }
  }
  std::sort(ring_.begin(), ring_.end());
}

NodeId ConsistentHashRing::node_for(Key key) const {
  const std::uint64_t h = hash_key(key);
  auto it = std::lower_bound(ring_.begin(), ring_.end(), Point{h, 0});
  if (it == ring_.end()) it = ring_.begin();
  return it->node;
}

std::vector<double> ConsistentHashRing::sample_ownership(
    std::size_t samples) const {
  std::vector<std::size_t> counts(num_nodes_, 0);
  for (std::size_t i = 0; i < samples; ++i) {
    ++counts[node_for(static_cast<Key>(i) * 2654435761u + 17)];
  }
  std::vector<double> out(num_nodes_);
  for (std::uint32_t n = 0; n < num_nodes_; ++n) {
    out[n] = static_cast<double>(counts[n]) / static_cast<double>(samples);
  }
  return out;
}

}  // namespace fwkv
