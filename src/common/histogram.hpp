// Lock-free-ish metric primitives: counters, value accumulators, and a
// log-bucketed latency histogram. All are safe for concurrent recording and
// are merged single-threaded after a run.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace fwkv {

/// Relaxed atomic counter. Metrics tolerate relaxed ordering; they are only
/// read after the workload threads join.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t get() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Sum + count + max of a stream of values (e.g. collectedSet sizes, Fig. 6).
class Accumulator {
 public:
  void record(std::uint64_t value);
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;
  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Histogram with power-of-two buckets over [1ns, ~36s] when fed
/// nanoseconds; generic over any uint64 value stream.
class LogHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t value);
  std::uint64_t count() const;
  std::uint64_t value_at_percentile(double p) const;
  double mean() const;
  void merge_from(const LogHistogram& other);
  void reset();
  std::string summary(const std::string& unit = "ns") const;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace fwkv
