// Deterministic random number generation for workloads and simulation.
//
// Each client thread owns its own Rng so experiments are reproducible given
// a seed, independent of thread scheduling.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fwkv {

/// xoshiro256** — fast, high-quality, and with a well-defined seeding
/// procedure (SplitMix64), so the same seed yields the same workload on any
/// platform.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bull);

  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p.
  bool next_bool(double p);

  /// TPC-C NURand(A, x, y) non-uniform distribution (clause 2.1.6).
  std::uint64_t nurand(std::uint64_t a, std::uint64_t x, std::uint64_t y);

  /// Random alphanumeric string of length in [lo, hi] (TPC-C a-string).
  std::string next_astring(std::size_t lo, std::size_t hi);

  /// Random numeric string of length in [lo, hi] (TPC-C n-string).
  std::string next_nstring(std::size_t lo, std::size_t hi);

 private:
  std::uint64_t s_[4];
};

/// Zipfian key-popularity distribution over [0, n) with parameter theta,
/// computed with the Gray et al. approximation used by YCSB's
/// ZipfianGenerator. theta = 0 degenerates to uniform.
class ZipfianGenerator {
 public:
  ZipfianGenerator(std::uint64_t n, double theta);

  std::uint64_t next(Rng& rng);

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
};

}  // namespace fwkv
