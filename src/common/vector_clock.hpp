// Vector clocks sized to the cluster, plus the per-node boolean access
// vector ("T.hasRead") used by FW-KV to freeze snapshots per contacted site.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/ids.hpp"

namespace fwkv {

/// Fixed-width logical vector clock. Entry j carries the sequence number of
/// the last transaction originated at node j that is reflected in the state
/// this clock describes (a node's siteVC, a transaction's T.VC, or a
/// version's commit VC).
class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t n) : entries_(n, 0) {}
  VectorClock(std::initializer_list<SeqNo> init) : entries_(init) {}

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  SeqNo operator[](std::size_t i) const { return entries_[i]; }
  SeqNo& operator[](std::size_t i) { return entries_[i]; }
  SeqNo at(std::size_t i) const { return entries_.at(i); }

  /// Entry-wise maximum with `other` (Alg. 2 line 9). Sizes must match.
  void merge(const VectorClock& other);

  /// True iff every entry of *this is <= the matching entry of `other`.
  bool leq(const VectorClock& other) const;

  /// True iff *this <= other restricted to the positions where mask[i] is
  /// true. This is the FW-KV visibility rule (Alg. 3 lines 4/13): only the
  /// entries of sites the transaction has already read from constrain
  /// version visibility.
  bool leq_masked(const VectorClock& other,
                  const std::vector<bool>& mask) const;

  /// True iff *this == other restricted to positions where mask[i] is true.
  bool eq_masked(const VectorClock& other, const std::vector<bool>& mask) const;

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    return a.entries_ == b.entries_;
  }
  friend bool operator!=(const VectorClock& a, const VectorClock& b) {
    return !(a == b);
  }

  const std::vector<SeqNo>& entries() const { return entries_; }
  std::vector<SeqNo>& entries() { return entries_; }

  std::string to_string() const;

 private:
  std::vector<SeqNo> entries_;
};

/// "T.hasRead": which sites a transaction has already read from. Once true,
/// the transaction's visible timestamp w.r.t. that site is frozen (§4.1).
class AccessVector {
 public:
  AccessVector() = default;
  explicit AccessVector(std::size_t n) : read_(n, false) {}

  std::size_t size() const { return read_.size(); }
  bool get(std::size_t i) const { return read_[i]; }
  void set(std::size_t i) { read_[i] = true; }
  void reset();

  /// True iff at least one site has been read from. The FW-KV update-read
  /// exclusion rule only applies once a snapshot has been partially fixed
  /// (first reads always return the latest version, §4.3 / Fig. 4).
  bool any() const;

  const std::vector<bool>& bits() const { return read_; }
  std::vector<bool>& bits() { return read_; }

  std::string to_string() const;

 private:
  std::vector<bool> read_;
};

}  // namespace fwkv
