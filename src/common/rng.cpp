#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <string>

namespace fwkv {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

constexpr char kAlnum[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789";

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless bounded generation; the modulo bias is
  // negligible for workload purposes but we reject anyway for correctness.
  std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::next_range(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + next_below(hi - lo + 1);
}

double Rng::next_double() {
  // 53 random mantissa bits.
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double p) { return next_double() < p; }

std::uint64_t Rng::nurand(std::uint64_t a, std::uint64_t x, std::uint64_t y) {
  // TPC-C clause 2.1.6 with C = 0 (constant run-time offset does not affect
  // the distribution's shape, only its anonymity requirements).
  return ((next_range(0, a) | next_range(x, y)) % (y - x + 1)) + x;
}

std::string Rng::next_astring(std::size_t lo, std::size_t hi) {
  std::size_t len = static_cast<std::size_t>(next_range(lo, hi));
  std::string s(len, '\0');
  for (auto& c : s) c = kAlnum[next_below(sizeof(kAlnum) - 1)];
  return s;
}

std::string Rng::next_nstring(std::size_t lo, std::size_t hi) {
  std::size_t len = static_cast<std::size_t>(next_range(lo, hi));
  std::string s(len, '\0');
  for (auto& c : s) c = static_cast<char>('0' + next_below(10));
  return s;
}

ZipfianGenerator::ZipfianGenerator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  assert(n > 0);
  if (theta_ <= 0.0) {
    alpha_ = zetan_ = eta_ = 0.0;
    return;
  }
  alpha_ = 1.0 / (1.0 - theta_);
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
}

std::uint64_t ZipfianGenerator::next(Rng& rng) {
  if (theta_ <= 0.0) return rng.next_below(n_);
  const double u = rng.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const auto idx = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return idx >= n_ ? n_ - 1 : idx;
}

double ZipfianGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

}  // namespace fwkv
