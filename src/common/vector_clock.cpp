#include "common/vector_clock.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace fwkv {

void VectorClock::merge(const VectorClock& other) {
  assert(entries_.size() == other.entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    entries_[i] = std::max(entries_[i], other.entries_[i]);
  }
}

bool VectorClock::leq(const VectorClock& other) const {
  assert(entries_.size() == other.entries_.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i] > other.entries_[i]) return false;
  }
  return true;
}

bool VectorClock::leq_masked(const VectorClock& other,
                             const std::vector<bool>& mask) const {
  assert(entries_.size() == other.entries_.size());
  assert(entries_.size() == mask.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (mask[i] && entries_[i] > other.entries_[i]) return false;
  }
  return true;
}

bool VectorClock::eq_masked(const VectorClock& other,
                            const std::vector<bool>& mask) const {
  assert(entries_.size() == other.entries_.size());
  assert(entries_.size() == mask.size());
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (mask[i] && entries_[i] != other.entries_[i]) return false;
  }
  return true;
}

std::string VectorClock::to_string() const {
  std::ostringstream os;
  os << '<';
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    if (i) os << ',';
    os << entries_[i];
  }
  os << '>';
  return os.str();
}

void AccessVector::reset() {
  std::fill(read_.begin(), read_.end(), false);
}

bool AccessVector::any() const {
  return std::any_of(read_.begin(), read_.end(), [](bool b) { return b; });
}

std::string AccessVector::to_string() const {
  std::string s;
  s.reserve(read_.size() + 2);
  s.push_back('[');
  for (bool b : read_) s.push_back(b ? '1' : '0');
  s.push_back(']');
  return s;
}

}  // namespace fwkv
