// Minimal leveled logger. The hot paths never log; this exists for the
// examples, the experiment runner, and debugging aid in tests.
#pragma once

#include <sstream>
#include <string>

namespace fwkv {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global minimum level; messages below it are dropped. Defaults to kInfo;
/// set FWKV_LOG=debug|info|warn|error in the environment to override.
LogLevel log_level();
void set_log_level(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace fwkv

#define FWKV_LOG(level)                                  \
  if (static_cast<int>(level) < static_cast<int>(::fwkv::log_level())) { \
  } else                                                 \
    ::fwkv::detail::LogLine(level)

#define FWKV_DEBUG FWKV_LOG(::fwkv::LogLevel::kDebug)
#define FWKV_INFO FWKV_LOG(::fwkv::LogLevel::kInfo)
#define FWKV_WARN FWKV_LOG(::fwkv::LogLevel::kWarn)
#define FWKV_ERROR FWKV_LOG(::fwkv::LogLevel::kError)
