#include "common/histogram.hpp"

#include <bit>
#include <sstream>

namespace fwkv {

void Accumulator::record(std::uint64_t value) {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t cur = max_.load(std::memory_order_relaxed);
  while (value > cur &&
         !max_.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
  }
}

double Accumulator::mean() const {
  const std::uint64_t c = count();
  return c == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(c);
}

void Accumulator::reset() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {
std::size_t bucket_for(std::uint64_t value) {
  return value == 0 ? 0 : static_cast<std::size_t>(std::bit_width(value));
}
}  // namespace

void LogHistogram::record(std::uint64_t value) {
  buckets_[bucket_for(value) % kBuckets].fetch_add(1,
                                                   std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

std::uint64_t LogHistogram::count() const {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

std::uint64_t LogHistogram::value_at_percentile(double p) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  auto target = static_cast<std::uint64_t>(p / 100.0 *
                                           static_cast<double>(total));
  if (target >= total) target = total - 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen > target) {
      // Representative value: middle of the bucket's range.
      return i == 0 ? 0 : (1ull << (i - 1)) + (1ull << (i - 1)) / 2;
    }
  }
  return 0;
}

double LogHistogram::mean() const {
  const std::uint64_t c = count();
  return c == 0 ? 0.0
               : static_cast<double>(sum_.load(std::memory_order_relaxed)) /
                     static_cast<double>(c);
}

void LogHistogram::merge_from(const LogHistogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i].fetch_add(other.buckets_[i].load(std::memory_order_relaxed),
                          std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void LogHistogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

std::string LogHistogram::summary(const std::string& unit) const {
  std::ostringstream os;
  os << "n=" << count() << " mean=" << mean() << unit
     << " p50=" << value_at_percentile(50) << unit
     << " p99=" << value_at_percentile(99) << unit;
  return os.str();
}

}  // namespace fwkv
