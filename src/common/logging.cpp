#include "common/logging.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace fwkv {
namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

int level_from_env() {
  const char* env = std::getenv("FWKV_LOG");
  if (env == nullptr) return static_cast<int>(LogLevel::kInfo);
  if (std::strcmp(env, "debug") == 0) return 0;
  if (std::strcmp(env, "info") == 0) return 1;
  if (std::strcmp(env, "warn") == 0) return 2;
  if (std::strcmp(env, "error") == 0) return 3;
  return static_cast<int>(LogLevel::kInfo);
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& log_mutex() {
  static std::mutex m;
  return m;
}

}  // namespace

LogLevel log_level() {
  int lv = g_level.load(std::memory_order_relaxed);
  if (lv < 0) {
    lv = level_from_env();
    g_level.store(lv, std::memory_order_relaxed);
  }
  return static_cast<LogLevel>(lv);
}

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(log_mutex());
  std::fprintf(stderr, "[fwkv %s] %s\n", level_name(level), msg.c_str());
}

}  // namespace fwkv
