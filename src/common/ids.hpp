// Fundamental identifier and value types shared by every FW-KV module.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace fwkv {

/// Index of a node (site) in the cluster. Nodes are dense [0, num_nodes).
using NodeId = std::uint32_t;

/// Per-node commit sequence number ("CurrSeqNo" in the paper). Entry j of a
/// vector clock holds the seqNo of the last transaction from node j applied.
using SeqNo = std::uint64_t;

/// A shared object identifier. Workloads map their logical keys (YCSB rows,
/// TPC-C composite keys) into this flat 64-bit space.
using Key = std::uint64_t;

/// Object payload. YCSB uses short opaque strings; TPC-C serializes rows.
using Value = std::string;

/// Monotonically increasing per-key version identifier ("v.id" in Alg. 3).
using VersionId = std::uint64_t;

/// Globally unique transaction identifier.
///
/// Layout: [ node:16 | client:16 | local sequence:32 ]. The node that issued
/// the transaction is recoverable, which the Remove handler and the metrics
/// aggregation rely on.
struct TxId {
  std::uint64_t raw = 0;

  constexpr TxId() = default;
  constexpr explicit TxId(std::uint64_t r) : raw(r) {}
  constexpr TxId(NodeId node, std::uint32_t client, std::uint32_t seq)
      : raw((static_cast<std::uint64_t>(node & 0xffffu) << 48) |
            (static_cast<std::uint64_t>(client & 0xffffu) << 32) | seq) {}

  constexpr NodeId node() const {
    return static_cast<NodeId>((raw >> 48) & 0xffffu);
  }
  constexpr std::uint32_t client() const {
    return static_cast<std::uint32_t>((raw >> 32) & 0xffffu);
  }
  constexpr std::uint32_t local_seq() const {
    return static_cast<std::uint32_t>(raw & 0xffffffffu);
  }

  constexpr bool valid() const { return raw != 0; }
  friend constexpr bool operator==(TxId a, TxId b) { return a.raw == b.raw; }
  friend constexpr bool operator!=(TxId a, TxId b) { return a.raw != b.raw; }
  friend constexpr bool operator<(TxId a, TxId b) { return a.raw < b.raw; }
};

/// A TxId that never identifies a real transaction.
inline constexpr TxId kInvalidTxId{};

std::string to_string(TxId id);

inline std::string to_string(TxId id) {
  return "T(" + std::to_string(id.node()) + "." + std::to_string(id.client()) +
         "." + std::to_string(id.local_seq()) + ")";
}

}  // namespace fwkv

template <>
struct std::hash<fwkv::TxId> {
  std::size_t operator()(fwkv::TxId id) const noexcept {
    // SplitMix64 finalizer: TxId raw values are highly structured, so mix.
    std::uint64_t x = id.raw + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
