// Key -> preferred-node mapping (§2.2: "FW-KV implements a local look-up
// function using consistent hashing").
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/key_mapper.hpp"

namespace fwkv {

/// Consistent-hash ring with virtual nodes. Every node in the cluster builds
/// the same ring locally (same seeds), so site(k) needs no coordination.
///
/// The evaluation configures "keys evenly distributed across nodes" (§5);
/// the default 128 virtual nodes per physical node keeps the imbalance under
/// a few percent, and tests assert that bound.
class ConsistentHashRing final : public KeyMapper {
 public:
  explicit ConsistentHashRing(std::uint32_t num_nodes,
                              std::uint32_t vnodes_per_node = 128);

  /// Preferred node for `key` ("site(k)" in Alg. 2).
  NodeId node_for(Key key) const override;

  std::uint32_t num_nodes() const { return num_nodes_; }

  /// Fraction of a large pseudo-random key sample owned by each node;
  /// exposed for balance tests and for the loader's placement stats.
  std::vector<double> sample_ownership(std::size_t samples = 1 << 20) const;

 private:
  struct Point {
    std::uint64_t hash;
    NodeId node;
    friend bool operator<(const Point& a, const Point& b) {
      return a.hash < b.hash;
    }
  };

  std::uint32_t num_nodes_;
  std::vector<Point> ring_;
};

/// Mixes a key before it hits the ring; also reused by the sharded lock
/// tables.
std::uint64_t hash_key(Key key);

}  // namespace fwkv
