// Key -> preferred-node placement policy (§2.2 / §3.1 "preferred site").
// The default policy is consistent hashing; workloads with a natural
// partitioning (TPC-C warehouses) plug in their own mapper so a warehouse's
// rows share a home node, as a real deployment would arrange.
#pragma once

#include "common/ids.hpp"

namespace fwkv {

class KeyMapper {
 public:
  virtual ~KeyMapper() = default;
  /// Preferred node of `key`; must be deterministic and identical on every
  /// node of the cluster.
  virtual NodeId node_for(Key key) const = 0;
};

}  // namespace fwkv
