# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_smoke_test[1]_include.cmake")
include("/root/repo/build/tests/vector_clock_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/consistent_hash_test[1]_include.cmake")
include("/root/repo/build/tests/histogram_test[1]_include.cmake")
include("/root/repo/build/tests/codec_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/lock_table_test[1]_include.cmake")
include("/root/repo/build/tests/version_chain_test[1]_include.cmake")
include("/root/repo/build/tests/mv_store_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/invariant_test[1]_include.cmake")
include("/root/repo/build/tests/longfork_test[1]_include.cmake")
include("/root/repo/build/tests/ycsb_test[1]_include.cmake")
include("/root/repo/build/tests/tpcc_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/transaction_test[1]_include.cmake")
include("/root/repo/build/tests/experiment_test[1]_include.cmake")
include("/root/repo/build/tests/psi_history_test[1]_include.cmake")
