file(REMOVE_RECURSE
  "CMakeFiles/tpcc_smoke_test.dir/tpcc_smoke_test.cpp.o"
  "CMakeFiles/tpcc_smoke_test.dir/tpcc_smoke_test.cpp.o.d"
  "tpcc_smoke_test"
  "tpcc_smoke_test.pdb"
  "tpcc_smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
