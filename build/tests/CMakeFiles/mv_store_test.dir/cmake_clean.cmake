file(REMOVE_RECURSE
  "CMakeFiles/mv_store_test.dir/mv_store_test.cpp.o"
  "CMakeFiles/mv_store_test.dir/mv_store_test.cpp.o.d"
  "mv_store_test"
  "mv_store_test.pdb"
  "mv_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
