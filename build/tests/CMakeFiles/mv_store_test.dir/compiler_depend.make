# Empty compiler generated dependencies file for mv_store_test.
# This may be replaced when dependencies are built.
