# Empty dependencies file for psi_history_test.
# This may be replaced when dependencies are built.
