file(REMOVE_RECURSE
  "CMakeFiles/psi_history_test.dir/psi_history_test.cpp.o"
  "CMakeFiles/psi_history_test.dir/psi_history_test.cpp.o.d"
  "psi_history_test"
  "psi_history_test.pdb"
  "psi_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psi_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
