file(REMOVE_RECURSE
  "CMakeFiles/version_chain_test.dir/version_chain_test.cpp.o"
  "CMakeFiles/version_chain_test.dir/version_chain_test.cpp.o.d"
  "version_chain_test"
  "version_chain_test.pdb"
  "version_chain_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_chain_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
