# Empty compiler generated dependencies file for version_chain_test.
# This may be replaced when dependencies are built.
