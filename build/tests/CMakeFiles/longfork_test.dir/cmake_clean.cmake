file(REMOVE_RECURSE
  "CMakeFiles/longfork_test.dir/longfork_test.cpp.o"
  "CMakeFiles/longfork_test.dir/longfork_test.cpp.o.d"
  "longfork_test"
  "longfork_test.pdb"
  "longfork_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longfork_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
