# Empty compiler generated dependencies file for longfork_test.
# This may be replaced when dependencies are built.
