file(REMOVE_RECURSE
  "CMakeFiles/consistent_hash_test.dir/consistent_hash_test.cpp.o"
  "CMakeFiles/consistent_hash_test.dir/consistent_hash_test.cpp.o.d"
  "consistent_hash_test"
  "consistent_hash_test.pdb"
  "consistent_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consistent_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
