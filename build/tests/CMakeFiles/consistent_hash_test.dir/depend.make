# Empty dependencies file for consistent_hash_test.
# This may be replaced when dependencies are built.
