file(REMOVE_RECURSE
  "CMakeFiles/tpcc_test.dir/tpcc_test.cpp.o"
  "CMakeFiles/tpcc_test.dir/tpcc_test.cpp.o.d"
  "tpcc_test"
  "tpcc_test.pdb"
  "tpcc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpcc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
