file(REMOVE_RECURSE
  "CMakeFiles/vector_clock_test.dir/vector_clock_test.cpp.o"
  "CMakeFiles/vector_clock_test.dir/vector_clock_test.cpp.o.d"
  "vector_clock_test"
  "vector_clock_test.pdb"
  "vector_clock_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_clock_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
