file(REMOVE_RECURSE
  "CMakeFiles/lock_table_test.dir/lock_table_test.cpp.o"
  "CMakeFiles/lock_table_test.dir/lock_table_test.cpp.o.d"
  "lock_table_test"
  "lock_table_test.pdb"
  "lock_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lock_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
