file(REMOVE_RECURSE
  "CMakeFiles/fwkv_cli.dir/fwkv_cli.cpp.o"
  "CMakeFiles/fwkv_cli.dir/fwkv_cli.cpp.o.d"
  "fwkv_cli"
  "fwkv_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwkv_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
