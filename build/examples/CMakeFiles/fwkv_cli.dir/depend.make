# Empty dependencies file for fwkv_cli.
# This may be replaced when dependencies are built.
