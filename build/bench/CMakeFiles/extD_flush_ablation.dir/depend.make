# Empty dependencies file for extD_flush_ablation.
# This may be replaced when dependencies are built.
