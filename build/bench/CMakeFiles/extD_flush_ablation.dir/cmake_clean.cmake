file(REMOVE_RECURSE
  "CMakeFiles/extD_flush_ablation.dir/extD_flush_ablation.cpp.o"
  "CMakeFiles/extD_flush_ablation.dir/extD_flush_ablation.cpp.o.d"
  "extD_flush_ablation"
  "extD_flush_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extD_flush_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
