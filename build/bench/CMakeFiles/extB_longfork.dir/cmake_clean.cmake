file(REMOVE_RECURSE
  "CMakeFiles/extB_longfork.dir/extB_longfork.cpp.o"
  "CMakeFiles/extB_longfork.dir/extB_longfork.cpp.o.d"
  "extB_longfork"
  "extB_longfork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extB_longfork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
