# Empty compiler generated dependencies file for extB_longfork.
# This may be replaced when dependencies are built.
