# Empty compiler generated dependencies file for fig7_ycsb_abort_delay.
# This may be replaced when dependencies are built.
