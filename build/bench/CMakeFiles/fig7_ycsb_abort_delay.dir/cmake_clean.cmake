file(REMOVE_RECURSE
  "CMakeFiles/fig7_ycsb_abort_delay.dir/fig7_ycsb_abort_delay.cpp.o"
  "CMakeFiles/fig7_ycsb_abort_delay.dir/fig7_ycsb_abort_delay.cpp.o.d"
  "fig7_ycsb_abort_delay"
  "fig7_ycsb_abort_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_ycsb_abort_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
