# Empty dependencies file for fig9a_tpcc_abort_delay.
# This may be replaced when dependencies are built.
