file(REMOVE_RECURSE
  "CMakeFiles/fig9a_tpcc_abort_delay.dir/fig9a_tpcc_abort_delay.cpp.o"
  "CMakeFiles/fig9a_tpcc_abort_delay.dir/fig9a_tpcc_abort_delay.cpp.o.d"
  "fig9a_tpcc_abort_delay"
  "fig9a_tpcc_abort_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9a_tpcc_abort_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
