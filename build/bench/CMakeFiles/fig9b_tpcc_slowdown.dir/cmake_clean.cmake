file(REMOVE_RECURSE
  "CMakeFiles/fig9b_tpcc_slowdown.dir/fig9b_tpcc_slowdown.cpp.o"
  "CMakeFiles/fig9b_tpcc_slowdown.dir/fig9b_tpcc_slowdown.cpp.o.d"
  "fig9b_tpcc_slowdown"
  "fig9b_tpcc_slowdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9b_tpcc_slowdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
