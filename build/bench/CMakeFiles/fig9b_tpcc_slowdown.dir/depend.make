# Empty dependencies file for fig9b_tpcc_slowdown.
# This may be replaced when dependencies are built.
