file(REMOVE_RECURSE
  "CMakeFiles/extC_zipf.dir/extC_zipf.cpp.o"
  "CMakeFiles/extC_zipf.dir/extC_zipf.cpp.o.d"
  "extC_zipf"
  "extC_zipf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extC_zipf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
