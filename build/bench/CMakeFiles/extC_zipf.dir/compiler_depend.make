# Empty compiler generated dependencies file for extC_zipf.
# This may be replaced when dependencies are built.
