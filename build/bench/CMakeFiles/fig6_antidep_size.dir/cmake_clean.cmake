file(REMOVE_RECURSE
  "CMakeFiles/fig6_antidep_size.dir/fig6_antidep_size.cpp.o"
  "CMakeFiles/fig6_antidep_size.dir/fig6_antidep_size.cpp.o.d"
  "fig6_antidep_size"
  "fig6_antidep_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_antidep_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
