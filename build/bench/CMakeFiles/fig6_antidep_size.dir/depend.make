# Empty dependencies file for fig6_antidep_size.
# This may be replaced when dependencies are built.
