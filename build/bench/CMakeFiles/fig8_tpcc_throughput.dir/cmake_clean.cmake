file(REMOVE_RECURSE
  "CMakeFiles/fig8_tpcc_throughput.dir/fig8_tpcc_throughput.cpp.o"
  "CMakeFiles/fig8_tpcc_throughput.dir/fig8_tpcc_throughput.cpp.o.d"
  "fig8_tpcc_throughput"
  "fig8_tpcc_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_tpcc_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
