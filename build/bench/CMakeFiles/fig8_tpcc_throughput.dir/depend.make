# Empty dependencies file for fig8_tpcc_throughput.
# This may be replaced when dependencies are built.
