file(REMOVE_RECURSE
  "CMakeFiles/extA_freshness.dir/extA_freshness.cpp.o"
  "CMakeFiles/extA_freshness.dir/extA_freshness.cpp.o.d"
  "extA_freshness"
  "extA_freshness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extA_freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
