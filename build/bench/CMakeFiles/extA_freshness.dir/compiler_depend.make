# Empty compiler generated dependencies file for extA_freshness.
# This may be replaced when dependencies are built.
