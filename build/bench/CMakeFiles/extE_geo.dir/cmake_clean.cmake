file(REMOVE_RECURSE
  "CMakeFiles/extE_geo.dir/extE_geo.cpp.o"
  "CMakeFiles/extE_geo.dir/extE_geo.cpp.o.d"
  "extE_geo"
  "extE_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extE_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
