# Empty compiler generated dependencies file for extE_geo.
# This may be replaced when dependencies are built.
