# Empty dependencies file for fwkv_net.
# This may be replaced when dependencies are built.
