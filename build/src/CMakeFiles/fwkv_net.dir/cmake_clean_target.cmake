file(REMOVE_RECURSE
  "libfwkv_net.a"
)
