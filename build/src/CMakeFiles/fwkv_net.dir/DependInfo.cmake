
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/codec.cpp" "src/CMakeFiles/fwkv_net.dir/net/codec.cpp.o" "gcc" "src/CMakeFiles/fwkv_net.dir/net/codec.cpp.o.d"
  "/root/repo/src/net/delay_queue.cpp" "src/CMakeFiles/fwkv_net.dir/net/delay_queue.cpp.o" "gcc" "src/CMakeFiles/fwkv_net.dir/net/delay_queue.cpp.o.d"
  "/root/repo/src/net/executor.cpp" "src/CMakeFiles/fwkv_net.dir/net/executor.cpp.o" "gcc" "src/CMakeFiles/fwkv_net.dir/net/executor.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/fwkv_net.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/fwkv_net.dir/net/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fwkv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
