file(REMOVE_RECURSE
  "CMakeFiles/fwkv_net.dir/net/codec.cpp.o"
  "CMakeFiles/fwkv_net.dir/net/codec.cpp.o.d"
  "CMakeFiles/fwkv_net.dir/net/delay_queue.cpp.o"
  "CMakeFiles/fwkv_net.dir/net/delay_queue.cpp.o.d"
  "CMakeFiles/fwkv_net.dir/net/executor.cpp.o"
  "CMakeFiles/fwkv_net.dir/net/executor.cpp.o.d"
  "CMakeFiles/fwkv_net.dir/net/network.cpp.o"
  "CMakeFiles/fwkv_net.dir/net/network.cpp.o.d"
  "libfwkv_net.a"
  "libfwkv_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwkv_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
