file(REMOVE_RECURSE
  "CMakeFiles/fwkv_core.dir/core/cluster.cpp.o"
  "CMakeFiles/fwkv_core.dir/core/cluster.cpp.o.d"
  "CMakeFiles/fwkv_core.dir/core/mv_node.cpp.o"
  "CMakeFiles/fwkv_core.dir/core/mv_node.cpp.o.d"
  "CMakeFiles/fwkv_core.dir/core/session.cpp.o"
  "CMakeFiles/fwkv_core.dir/core/session.cpp.o.d"
  "CMakeFiles/fwkv_core.dir/core/transaction.cpp.o"
  "CMakeFiles/fwkv_core.dir/core/transaction.cpp.o.d"
  "CMakeFiles/fwkv_core.dir/twopc/twopc_node.cpp.o"
  "CMakeFiles/fwkv_core.dir/twopc/twopc_node.cpp.o.d"
  "libfwkv_core.a"
  "libfwkv_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwkv_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
