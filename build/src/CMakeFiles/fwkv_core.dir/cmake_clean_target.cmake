file(REMOVE_RECURSE
  "libfwkv_core.a"
)
