
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cluster.cpp" "src/CMakeFiles/fwkv_core.dir/core/cluster.cpp.o" "gcc" "src/CMakeFiles/fwkv_core.dir/core/cluster.cpp.o.d"
  "/root/repo/src/core/mv_node.cpp" "src/CMakeFiles/fwkv_core.dir/core/mv_node.cpp.o" "gcc" "src/CMakeFiles/fwkv_core.dir/core/mv_node.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/fwkv_core.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/fwkv_core.dir/core/session.cpp.o.d"
  "/root/repo/src/core/transaction.cpp" "src/CMakeFiles/fwkv_core.dir/core/transaction.cpp.o" "gcc" "src/CMakeFiles/fwkv_core.dir/core/transaction.cpp.o.d"
  "/root/repo/src/twopc/twopc_node.cpp" "src/CMakeFiles/fwkv_core.dir/twopc/twopc_node.cpp.o" "gcc" "src/CMakeFiles/fwkv_core.dir/twopc/twopc_node.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fwkv_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fwkv_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/fwkv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
