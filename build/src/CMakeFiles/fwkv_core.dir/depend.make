# Empty dependencies file for fwkv_core.
# This may be replaced when dependencies are built.
