file(REMOVE_RECURSE
  "CMakeFiles/fwkv_common.dir/common/consistent_hash.cpp.o"
  "CMakeFiles/fwkv_common.dir/common/consistent_hash.cpp.o.d"
  "CMakeFiles/fwkv_common.dir/common/histogram.cpp.o"
  "CMakeFiles/fwkv_common.dir/common/histogram.cpp.o.d"
  "CMakeFiles/fwkv_common.dir/common/logging.cpp.o"
  "CMakeFiles/fwkv_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/fwkv_common.dir/common/rng.cpp.o"
  "CMakeFiles/fwkv_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/fwkv_common.dir/common/vector_clock.cpp.o"
  "CMakeFiles/fwkv_common.dir/common/vector_clock.cpp.o.d"
  "libfwkv_common.a"
  "libfwkv_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwkv_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
