# Empty dependencies file for fwkv_common.
# This may be replaced when dependencies are built.
