file(REMOVE_RECURSE
  "libfwkv_common.a"
)
