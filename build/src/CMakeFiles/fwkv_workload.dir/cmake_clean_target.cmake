file(REMOVE_RECURSE
  "libfwkv_workload.a"
)
