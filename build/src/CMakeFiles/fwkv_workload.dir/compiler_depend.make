# Empty compiler generated dependencies file for fwkv_workload.
# This may be replaced when dependencies are built.
