file(REMOVE_RECURSE
  "CMakeFiles/fwkv_workload.dir/workload/tpcc.cpp.o"
  "CMakeFiles/fwkv_workload.dir/workload/tpcc.cpp.o.d"
  "CMakeFiles/fwkv_workload.dir/workload/tpcc_loader.cpp.o"
  "CMakeFiles/fwkv_workload.dir/workload/tpcc_loader.cpp.o.d"
  "CMakeFiles/fwkv_workload.dir/workload/tpcc_schema.cpp.o"
  "CMakeFiles/fwkv_workload.dir/workload/tpcc_schema.cpp.o.d"
  "CMakeFiles/fwkv_workload.dir/workload/ycsb.cpp.o"
  "CMakeFiles/fwkv_workload.dir/workload/ycsb.cpp.o.d"
  "libfwkv_workload.a"
  "libfwkv_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwkv_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
