file(REMOVE_RECURSE
  "libfwkv_runtime.a"
)
