file(REMOVE_RECURSE
  "CMakeFiles/fwkv_runtime.dir/runtime/driver.cpp.o"
  "CMakeFiles/fwkv_runtime.dir/runtime/driver.cpp.o.d"
  "CMakeFiles/fwkv_runtime.dir/runtime/longfork.cpp.o"
  "CMakeFiles/fwkv_runtime.dir/runtime/longfork.cpp.o.d"
  "CMakeFiles/fwkv_runtime.dir/runtime/metrics.cpp.o"
  "CMakeFiles/fwkv_runtime.dir/runtime/metrics.cpp.o.d"
  "CMakeFiles/fwkv_runtime.dir/runtime/report.cpp.o"
  "CMakeFiles/fwkv_runtime.dir/runtime/report.cpp.o.d"
  "libfwkv_runtime.a"
  "libfwkv_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwkv_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
