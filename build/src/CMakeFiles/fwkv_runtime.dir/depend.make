# Empty dependencies file for fwkv_runtime.
# This may be replaced when dependencies are built.
