# Empty compiler generated dependencies file for fwkv_experiment.
# This may be replaced when dependencies are built.
