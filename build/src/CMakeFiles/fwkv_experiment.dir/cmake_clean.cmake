file(REMOVE_RECURSE
  "CMakeFiles/fwkv_experiment.dir/runtime/experiment.cpp.o"
  "CMakeFiles/fwkv_experiment.dir/runtime/experiment.cpp.o.d"
  "libfwkv_experiment.a"
  "libfwkv_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwkv_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
