file(REMOVE_RECURSE
  "libfwkv_experiment.a"
)
