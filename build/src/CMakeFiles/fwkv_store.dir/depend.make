# Empty dependencies file for fwkv_store.
# This may be replaced when dependencies are built.
