file(REMOVE_RECURSE
  "CMakeFiles/fwkv_store.dir/store/lock_table.cpp.o"
  "CMakeFiles/fwkv_store.dir/store/lock_table.cpp.o.d"
  "CMakeFiles/fwkv_store.dir/store/mv_store.cpp.o"
  "CMakeFiles/fwkv_store.dir/store/mv_store.cpp.o.d"
  "CMakeFiles/fwkv_store.dir/store/sv_store.cpp.o"
  "CMakeFiles/fwkv_store.dir/store/sv_store.cpp.o.d"
  "CMakeFiles/fwkv_store.dir/store/version_chain.cpp.o"
  "CMakeFiles/fwkv_store.dir/store/version_chain.cpp.o.d"
  "libfwkv_store.a"
  "libfwkv_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fwkv_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
