file(REMOVE_RECURSE
  "libfwkv_store.a"
)
