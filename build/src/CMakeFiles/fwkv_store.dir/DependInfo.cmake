
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/lock_table.cpp" "src/CMakeFiles/fwkv_store.dir/store/lock_table.cpp.o" "gcc" "src/CMakeFiles/fwkv_store.dir/store/lock_table.cpp.o.d"
  "/root/repo/src/store/mv_store.cpp" "src/CMakeFiles/fwkv_store.dir/store/mv_store.cpp.o" "gcc" "src/CMakeFiles/fwkv_store.dir/store/mv_store.cpp.o.d"
  "/root/repo/src/store/sv_store.cpp" "src/CMakeFiles/fwkv_store.dir/store/sv_store.cpp.o" "gcc" "src/CMakeFiles/fwkv_store.dir/store/sv_store.cpp.o.d"
  "/root/repo/src/store/version_chain.cpp" "src/CMakeFiles/fwkv_store.dir/store/version_chain.cpp.o" "gcc" "src/CMakeFiles/fwkv_store.dir/store/version_chain.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/fwkv_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
