#!/usr/bin/env bash
# Build with ThreadSanitizer and run the tier-1 ctest suite under it.
#
# The lock-light read lane (per-entry seqlock snapshots, reader-writer entry
# latches, striped removed-set) must be proven race-clean on every change,
# not assumed: this is the proof. Any TSan report fails the run.
#
# Usage: scripts/check_tsan.sh [extra ctest args, e.g. -R MVStore]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
JOBS=$(nproc)

cmake -B "$BUILD_DIR" -S . \
  -DFWKV_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$JOBS"

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS" "$@"
