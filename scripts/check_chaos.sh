#!/usr/bin/env bash
# Build with ThreadSanitizer and run the chaos-labelled test suite: the
# seed-parameterized fault-injection property tests (psi_history_chaos_test,
# invariant_chaos_test — 8 fixed seeds x 3 protocols at 5% drop+dup+reorder
# plus healing partitions) and the deterministic recovery scenarios
# (fault_recovery_test).
#
# TSan matters here more than anywhere: fault injection drives the
# retry/dedup/gap-repair paths that never run on a reliable network, and
# those paths race against the ordinary fast path by design. Any TSan
# report fails the run. A failing seed is printed in the assertion message
# ("reproduce: FaultPlan::uniform(<seed>, ...)").
#
# Usage: scripts/check_chaos.sh [extra ctest args, e.g. -R ChaosHistory]
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=build-tsan
JOBS=$(nproc)

cmake -B "$BUILD_DIR" -S . \
  -DFWKV_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j"$JOBS"

export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
ctest --test-dir "$BUILD_DIR" -L chaos --output-on-failure -j"$JOBS" "$@"
