// Extension C: skewed access. The paper evaluates uniform keys only ("we
// do not test the case of a skewed access distribution"); this ablation
// answers the natural follow-up — how do the FW-KV/Walter gap, the abort
// rates, and the anti-dependency sets behave as YCSB key popularity skews?
#include "bench_common.hpp"
#include "runtime/driver.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Extension C: Zipfian skew sweep (YCSB, 10 nodes, 50k keys, 20% ro)",
      "skew concentrates writes on hot keys: anti-dependency sets and the "
      "FW-KV/Walter gap grow with theta, as §5 predicts for contention");

  const auto scale = runtime::ExperimentScale::from_env();

  Table table("Zipf sweep",
              {"theta", "FW-KV kTx/s", "Walter kTx/s", "FW-KV/Walter",
               "FW-KV abort", "Walter abort", "mean antidep"});
  for (double theta : {0.0, 0.5, 0.8, 0.99}) {
    std::vector<runtime::RunResult> results;
    // Build both clusters, interleave trials (as run_*_matrix does, but the
    // zipf knob is not part of YcsbPoint, so drive directly).
    std::vector<std::unique_ptr<Cluster>> clusters;
    std::vector<std::unique_ptr<ycsb::YcsbWorkload>> workloads;
    for (Protocol p : {Protocol::kFwKv, Protocol::kWalter}) {
      ClusterConfig cfg;
      cfg.num_nodes = 10;
      cfg.protocol = p;
      cfg.net.one_way_latency = scale.one_way_latency;
      clusters.push_back(std::make_unique<Cluster>(cfg));
      ycsb::YcsbConfig ycfg;
      ycfg.total_keys = 50'000;
      ycfg.read_only_ratio = 0.2;
      ycfg.zipf_theta = theta;
      workloads.push_back(std::make_unique<ycsb::YcsbWorkload>(ycfg));
      workloads.back()->load(*clusters.back());
    }
    runtime::DriverConfig dcfg;
    dcfg.clients_per_node = scale.clients_per_node;
    dcfg.warmup = scale.warmup;
    dcfg.measure = scale.measure;
    results.resize(2);
    for (std::uint32_t t = 0; t < scale.trials; ++t) {
      for (int i = 0; i < 2; ++i) {
        auto trial = runtime::run_driver(*clusters[i], *workloads[i], dcfg);
        if (t == 0) {
          results[i] = std::move(trial);
        } else {
          results[i].merge_trial(trial);
        }
      }
    }
    table.add_row(
        {Table::fmt(theta, 2), Table::fmt(results[0].throughput_tps() / 1000),
         Table::fmt(results[1].throughput_tps() / 1000),
         Table::fmt(results[1].throughput_tps() > 0
                        ? results[0].throughput_tps() /
                              results[1].throughput_tps()
                        : 0,
                    2),
         Table::fmt_pct(results[0].abort_rate()),
         Table::fmt_pct(results[1].abort_rate()),
         Table::fmt(results[0].mean_collected_set(), 2)});
  }
  table.print(std::cout);
  return 0;
}
