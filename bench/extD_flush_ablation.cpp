// Extension D: ablation of the propagation batching interval (DESIGN.md
// §5 decision 2/5). Walter-style periodic propagation trades network
// traffic against snapshot staleness: a longer flush interval sends fewer
// Propagate messages but leaves Walter's begin-time snapshots (and both
// systems' in-order Decide application) further behind.
#include "bench_common.hpp"
#include "runtime/driver.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Extension D: propagation flush-interval ablation (FW-KV vs Walter, "
      "10 nodes)",
      "larger intervals cut Propagate traffic; FW-KV read freshness is "
      "immune (first-contact reads bypass siteVC), Walter staleness and "
      "abort rate grow");

  const auto scale = runtime::ExperimentScale::from_env();

  Table table("Flush-interval sweep (YCSB 10k keys, 50% read-only)",
              {"interval", "protocol", "kTx/s", "abort", "stale reads",
               "propagate msgs/commit"});
  for (auto interval : {std::chrono::microseconds(200),
                        std::chrono::microseconds(1000),
                        std::chrono::microseconds(4000)}) {
    for (Protocol p : {Protocol::kFwKv, Protocol::kWalter}) {
      ClusterConfig cfg;
      cfg.num_nodes = 10;
      cfg.protocol = p;
      cfg.net.one_way_latency = scale.one_way_latency;
      cfg.protocol_config.propagate_flush_interval = interval;
      Cluster cluster(cfg);
      ycsb::YcsbConfig ycfg;
      ycfg.total_keys = 10'000;
      ycfg.read_only_ratio = 0.5;
      ycsb::YcsbWorkload workload(ycfg);
      workload.load(cluster);

      runtime::DriverConfig dcfg;
      dcfg.clients_per_node = scale.clients_per_node;
      dcfg.warmup = scale.warmup;
      dcfg.measure = scale.measure;
      auto result = runtime::run_driver(cluster, workload, dcfg);
      const auto propagates =
          cluster.network().messages_sent(net::MessageType::kPropagate);
      const double per_commit =
          result.clients.commits() == 0
              ? 0.0
              : static_cast<double>(propagates) /
                    static_cast<double>(result.clients.commits());
      table.add_row(
          {Table::fmt(std::chrono::duration<double, std::milli>(interval)
                          .count(),
                      1) + " ms",
           protocol_name(p), Table::fmt(result.throughput_tps() / 1000),
           Table::fmt_pct(result.abort_rate()),
           Table::fmt_pct(result.stale_read_fraction(), 2),
           Table::fmt(per_commit, 2)});
    }
  }
  table.print(std::cout);
  return 0;
}
