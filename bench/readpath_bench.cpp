// Multi-threaded read-path contention benchmark (machine-readable output).
//
// Exercises the MVStore hot paths directly — no simulated network — so the
// numbers isolate store-level synchronization cost: version selection,
// reader (de)registration, validate, and install. Four mixes:
//
//   ro_hot      - read-only transactions over a small hot key set (worst
//                 case for per-entry and index-shard contention);
//   ro_uniform  - read-only transactions over a wide key space (shard-map
//                 lookup cost dominates);
//   read_mostly - YCSB-B-shaped: 95% update-transaction reads, 5% installs
//                 with collected-set stamping plus a validate per install;
//   validate    - pure prepare-path validation (the seqlock fast lane).
//
// Output is JSON ({"bench":"readpath","runs":[...]}): one run object per
// (mix, threads) point with ops/sec. --append merges into an existing file
// written by this tool so baseline and current numbers live side by side
// (see BENCH_readpath.json).
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "store/mv_store.hpp"

namespace {

using namespace fwkv;
using store::MVStore;

constexpr std::size_t kNodes = 4;
constexpr Key kHotKeys = 64;
constexpr Key kWideKeys = 8192;

// xorshift64* — cheap per-thread deterministic stream.
struct BenchRng {
  std::uint64_t s;
  explicit BenchRng(std::uint64_t seed) : s(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  }
};

// The deregistration API changed from remove_tx(tx) (reverse index only) to
// remove_tx(tx, read_keys) (per-transaction batched flush). Detect which one
// this tree provides so the same bench source measures both sides.
template <typename Store>
void deregister(Store& s, TxId tx, const std::vector<Key>& keys) {
  if constexpr (requires { s.remove_tx(tx, std::span<const Key>(keys)); }) {
    s.remove_tx(tx, std::span<const Key>(keys));
  } else {
    (void)keys;
    s.remove_tx(tx);
  }
}

struct RunResult {
  std::string mix;
  unsigned threads = 0;
  double ops_per_sec = 0;
  std::uint64_t total_ops = 0;
  double duration_ms = 0;
};

template <typename WorkerFn>
RunResult run_mix(const char* mix, unsigned threads, int ms, WorkerFn&& fn) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> ts;
  ts.reserve(threads);
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned t = 0; t < threads; ++t) {
    ts.emplace_back([&, t] { total.fetch_add(fn(t, stop)); });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  stop.store(true);
  for (auto& th : ts) th.join();
  const auto t1 = std::chrono::steady_clock::now();
  RunResult r;
  r.mix = mix;
  r.threads = threads;
  r.total_ops = total.load();
  r.duration_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  r.ops_per_sec = r.total_ops / (r.duration_ms / 1000.0);
  return r;
}

RunResult bench_read_only(unsigned threads, int ms, Key key_space,
                          const char* mix) {
  MVStore store;
  for (Key k = 0; k < key_space; ++k) store.load(k, "v", kNodes);
  return run_mix(mix, threads, ms, [&](unsigned t, std::atomic<bool>& stop) {
    BenchRng rng(t + 1);
    VectorClock tvc(kNodes);
    std::vector<bool> mask(kNodes, false);
    std::vector<Key> keys(8);
    std::uint64_t ops = 0;
    std::uint32_t seq = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      TxId me(1, t, ++seq);
      for (auto& k : keys) {
        k = static_cast<Key>(rng.next() % key_space);
        auto r = store.read_read_only(k, tvc, mask, me);
        ops += r.found;
      }
      deregister(store, me, keys);
    }
    return ops;
  });
}

RunResult bench_read_mostly(unsigned threads, int ms) {
  MVStore store;
  constexpr Key kKeys = 512;
  for (Key k = 0; k < kKeys; ++k) store.load(k, "v", kNodes);
  return run_mix("read_mostly", threads, ms,
                 [&](unsigned t, std::atomic<bool>& stop) {
    BenchRng rng(t + 101);
    VectorClock tvc(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) tvc[i] = 1u << 20;
    std::vector<bool> mask(kNodes, true);
    std::uint64_t ops = 0;
    SeqNo seq = 0;
    const NodeId origin = t % kNodes;
    std::vector<TxId> collected{TxId(2, t, 7)};
    while (!stop.load(std::memory_order_relaxed)) {
      const Key k = static_cast<Key>(rng.next() % kKeys);
      if (rng.next() % 100 < 95) {
        auto r = store.read_update(k, tvc, mask, true);
        ops += r.found;
      } else {
        // Prepare-path validate, then install with a stamped collected set.
        ops += store.validate_key(k, tvc);
        VectorClock commit_vc(kNodes);
        commit_vc[origin] = ++seq;
        store.install(k, "v2", commit_vc, origin, seq, collected);
        ++ops;
      }
    }
    return ops;
  });
}

RunResult bench_validate(unsigned threads, int ms) {
  MVStore store;
  for (Key k = 0; k < kHotKeys; ++k) store.load(k, "v", kNodes);
  return run_mix("validate", threads, ms,
                 [&](unsigned t, std::atomic<bool>& stop) {
    BenchRng rng(t + 201);
    VectorClock tvc(kNodes);
    for (std::size_t i = 0; i < kNodes; ++i) tvc[i] = 1;
    std::uint64_t ops = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const Key k = static_cast<Key>(rng.next() % kHotKeys);
      ops += store.validate_key(k, tvc);
      ops += store.validate_key_version(k, 1);
    }
    return ops;
  });
}

void append_json(std::string& out, const RunResult& r,
                 const std::string& label, bool first) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s    {\"label\": \"%s\", \"mix\": \"%s\", \"threads\": %u, "
                "\"ops_per_sec\": %.0f, \"total_ops\": %llu, "
                "\"duration_ms\": %.1f}",
                first ? "" : ",\n", label.c_str(), r.mix.c_str(), r.threads,
                r.ops_per_sec,
                static_cast<unsigned long long>(r.total_ops), r.duration_ms);
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string label = "current";
  std::string append_file;
  int ms = 500;
  std::vector<unsigned> threads = {1, 2, 4, 8};
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--label" && i + 1 < argc) {
      label = argv[++i];
    } else if (a == "--append" && i + 1 < argc) {
      append_file = argv[++i];
    } else if (a == "--ms" && i + 1 < argc) {
      ms = std::atoi(argv[++i]);
    } else if (a == "--threads" && i + 1 < argc) {
      threads.clear();
      std::stringstream ss(argv[++i]);
      std::string tok;
      while (std::getline(ss, tok, ',')) {
        char* end = nullptr;
        const unsigned long n = std::strtoul(tok.c_str(), &end, 10);
        if (end == tok.c_str() || *end != '\0' || n == 0 || n > 1024) {
          std::fprintf(stderr, "--threads: bad count '%s'\n", tok.c_str());
          return 2;
        }
        threads.push_back(static_cast<unsigned>(n));
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--label L] [--append FILE] [--ms N] "
                   "[--threads 1,2,4,8]\n",
                   argv[0]);
      return 2;
    }
  }

  std::string body;
  bool first = true;
  for (unsigned t : threads) {
    RunResult rs[] = {
        bench_read_only(t, ms, kHotKeys, "ro_hot"),
        bench_read_only(t, ms, kWideKeys, "ro_uniform"),
        bench_read_mostly(t, ms),
        bench_validate(t, ms),
    };
    for (const auto& r : rs) {
      std::fprintf(stderr, "%-12s threads=%u  %12.0f ops/s\n", r.mix.c_str(),
                   r.threads, r.ops_per_sec);
      append_json(body, r, label, first);
      first = false;
    }
  }

  // Self-owned file format: {"bench": "readpath", "runs": [...]} with the
  // exact closing suffix below, so appending a later run is a suffix swap.
  const std::string kSuffix = "\n  ]\n}\n";
  std::string content;
  if (!append_file.empty()) {
    std::ifstream in(append_file);
    if (in) {
      std::stringstream ss;
      ss << in.rdbuf();
      content = ss.str();
    }
  }
  if (content.size() > kSuffix.size() &&
      content.compare(content.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0) {
    content.resize(content.size() - kSuffix.size());
    content += ",\n" + body + kSuffix;
  } else {
    content = "{\n  \"bench\": \"readpath\",\n  \"runs\": [\n" + body + kSuffix;
  }
  if (append_file.empty()) {
    std::fputs(content.c_str(), stdout);
  } else {
    std::ofstream out(append_file, std::ios::trunc);
    out << content;
    out.flush();
    if (!out) {
      std::fprintf(stderr, "--append: cannot write %s\n", append_file.c_str());
      return 1;
    }
  }
  return 0;
}
