// Extension A: quantifies the paper's core claim (§2.4) directly — how
// fresh are the versions returned to read-only transactions? We measure the
// fraction of reads returning a non-latest version and the mean version gap
// under normal and delayed propagation, FW-KV vs Walter.
#include "bench_common.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Extension A: read freshness (YCSB, 10 nodes)",
      "FW-KV first-contact reads return the latest version (stale fraction "
      "near zero and insensitive to propagation delay); Walter's staleness "
      "grows with the delay");

  const auto scale = runtime::ExperimentScale::from_env();

  Table table("Read staleness",
              {"protocol", "propagate delay", "stale reads", "mean gap "
               "(versions)"});
  std::vector<runtime::YcsbPoint> points;
  for (auto delay : {std::chrono::nanoseconds{0},
                     std::chrono::nanoseconds{std::chrono::milliseconds(1)},
                     std::chrono::nanoseconds{std::chrono::milliseconds(5)}}) {
    for (Protocol p : {Protocol::kFwKv, Protocol::kWalter}) {
      runtime::YcsbPoint point;
      point.protocol = p;
      point.num_nodes = 10;
      point.total_keys = 10'000;  // hotter keys -> more version churn
      point.read_only_ratio = 0.5;
      point.propagate_extra_delay = delay;
      points.push_back(point);
    }
  }
  auto results = runtime::run_ycsb_matrix(points, scale);
  for (std::size_t i = 0; i < points.size(); ++i) {
    table.add_row(
        {protocol_name(points[i].protocol),
         Table::fmt(std::chrono::duration<double, std::milli>(
                        points[i].propagate_extra_delay)
                        .count(),
                    0) + " ms",
         Table::fmt_pct(results[i].stale_read_fraction(), 2),
         Table::fmt(results[i].mean_freshness_gap(), 3)});
  }
  table.print(std::cout);
  return 0;
}
