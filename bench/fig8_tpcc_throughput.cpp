// Figure 8: TPC-C throughput (kTx/s) vs number of nodes for 20%/50%
// read-only mixes and 16/32 warehouses per node, FW-KV vs Walter vs 2PC.
#include "bench_common.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Figure 8: TPC-C throughput vs nodes",
      "FW-KV within 5% of Walter at 50% read-only; max gap ~28% at 20% "
      "read-only; both PSI systems well above 2PC-baseline");

  const auto scale = runtime::ExperimentScale::from_env();
  const Protocol protocols[] = {Protocol::kFwKv, Protocol::kWalter,
                                Protocol::kTwoPC};

  for (double ro : {0.2, 0.5}) {
    Table table("TPC-C throughput (kTx/s), " + Table::fmt(ro * 100, 0) +
                    "% read-only",
                {"W/n", "nodes", "FW-KV", "Walter", "2PC", "FW-KV/Walter",
                 "FW-KV/2PC"});
    for (std::uint32_t wpn : {16u, 32u}) {
      for (std::uint32_t nodes : node_sweep()) {
        std::vector<runtime::TpccPoint> points(3);
        for (int p = 0; p < 3; ++p) {
          points[p].protocol = protocols[p];
          points[p].num_nodes = nodes;
          points[p].warehouses_per_node = wpn;
          points[p].read_only_ratio = ro;
        }
        auto results = runtime::run_tpcc_matrix(points, scale);
        double tput[3];
        for (int p = 0; p < 3; ++p) tput[p] = results[p].throughput_tps();
        table.add_row({std::to_string(wpn), std::to_string(nodes),
                       Table::fmt(tput[0] / 1000.0),
                       Table::fmt(tput[1] / 1000.0),
                       Table::fmt(tput[2] / 1000.0),
                       Table::fmt(tput[1] > 0 ? tput[0] / tput[1] : 0, 2),
                       Table::fmt(tput[2] > 0 ? tput[0] / tput[2] : 0, 2)});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
