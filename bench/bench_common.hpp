// Shared helpers for the figure-reproduction bench binaries.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "runtime/experiment.hpp"
#include "runtime/report.hpp"

namespace fwkv::bench {

inline std::vector<std::uint32_t> node_sweep() {
  // Paper sweeps 5/10/15/20 CloudLab machines. FWKV_BENCH_NODES_MAX trims
  // the sweep for quick runs on small hosts.
  std::vector<std::uint32_t> nodes{5, 10, 15, 20};
  if (const char* cap = std::getenv("FWKV_BENCH_NODES_MAX")) {
    const auto max_nodes = static_cast<std::uint32_t>(std::atoi(cap));
    std::erase_if(nodes, [&](std::uint32_t n) { return n > max_nodes; });
    if (nodes.empty()) nodes.push_back(max_nodes);
  }
  return nodes;
}

inline const char* short_name(Protocol p) { return protocol_name(p); }

/// Preamble every figure bench prints: what the paper's figure shows and
/// what deviation to expect from the simulated substrate.
inline void print_header(const char* figure, const char* expectation) {
  std::cout << "########################################################\n"
            << "# " << figure << "\n"
            << "# Paper expectation: " << expectation << "\n"
            << "# Note: the simulator reproduces protocol-relative shapes\n"
            << "# at each configuration, not CloudLab absolute numbers.\n"
            << "########################################################\n\n";
}

}  // namespace fwkv::bench
