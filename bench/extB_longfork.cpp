// Extension B: the Fig. 1 long-fork scenario at scale. Two local updaters,
// read-only transactions on other nodes reading both streams. Counts
// first-contact reads that miss committed-before-start updates and
// opposite-order snapshot pairs.
#include <iostream>

#include "runtime/longfork.hpp"
#include "runtime/report.hpp"

int main() {
  using namespace fwkv;
  using runtime::Table;

  std::cout
      << "########################################################\n"
      << "# Extension B: long-fork probe (Fig. 1 scenario)\n"
      << "# Paper expectation: FW-KV first-contact reads never miss a\n"
      << "# committed-before-start update, so the client-visible long\n"
      << "# fork of Fig. 1 disappears; Walter exhibits it freely when\n"
      << "# Propagate lags.\n"
      << "########################################################\n\n";

  Table table("Long-fork probe (4 nodes, 1 ms propagate delay)",
              {"protocol", "snapshots", "updates", "stale first reads",
               "long-fork pairs", "stale long-fork pairs"});
  for (Protocol p : {Protocol::kFwKv, Protocol::kWalter}) {
    runtime::LongForkProbeConfig cfg;
    cfg.protocol = p;
    cfg.duration = std::chrono::milliseconds(800);
    auto result = runtime::run_long_fork_probe(cfg);
    table.add_row({protocol_name(p), std::to_string(result.snapshots),
                   std::to_string(result.updates_committed),
                   std::to_string(result.stale_first_reads) + " (" +
                       Table::fmt_pct(result.stale_first_read_rate(), 2) + ")",
                   std::to_string(result.long_fork_pairs),
                   std::to_string(result.stale_long_fork_pairs)});
  }
  table.print(std::cout);
  return 0;
}
