// Figure 6: average number of anti-dependencies (merged collectedSet size)
// gathered by FW-KV update transactions during the prepare phase, for
// 20/50/80% read-only mixes and 50k/100k/500k keys at 20 nodes.
#include "bench_common.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Figure 6: anti-dependency set size at prepare (FW-KV, 20 nodes)",
      "grows as read-only share and contention rise (sharp jump from 80% to "
      "50% RO at 50k keys due to transitive propagation); ~0 at 500k keys");

  const auto scale = runtime::ExperimentScale::from_env();
  const std::uint32_t nodes = node_sweep().back();

  Table table("FW-KV mean collected anti-dependencies per update prepare",
              {"keys", "20% ro", "50% ro", "80% ro"});
  for (std::uint64_t keys :
       {std::uint64_t{50'000}, std::uint64_t{100'000}, std::uint64_t{500'000}}) {
    std::vector<std::string> row{std::to_string(keys)};
    for (double ro : {0.2, 0.5, 0.8}) {
      runtime::YcsbPoint point;
      point.protocol = Protocol::kFwKv;
      point.num_nodes = nodes;
      point.total_keys = keys;
      point.read_only_ratio = ro;
      auto result = runtime::run_ycsb_point(point, scale);
      row.push_back(Table::fmt(result.mean_collected_set(), 2));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
