// Figure 5: YCSB throughput (kTx/s) vs number of nodes, for 20% / 50%
// read-only mixes and 50k / 500k total keys, FW-KV vs Walter vs
// 2PC-baseline.
#include "bench_common.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Figure 5: YCSB throughput vs nodes",
      "FW-KV within ~5% of Walter at low contention (500k keys), gap up to "
      "~20% at 50k keys / 20 nodes; both PSI systems >3x over 2PC");

  const auto scale = runtime::ExperimentScale::from_env();
  const Protocol protocols[] = {Protocol::kFwKv, Protocol::kWalter,
                                Protocol::kTwoPC};

  for (double ro : {0.2, 0.5}) {
    Table table("YCSB throughput (kTx/s), " +
                    Table::fmt(ro * 100, 0) + "% read-only",
                {"keys", "nodes", "FW-KV", "Walter", "2PC", "FW-KV/Walter",
                 "FW-KV/2PC"});
    for (std::uint64_t keys : {std::uint64_t{50'000}, std::uint64_t{500'000}}) {
      for (std::uint32_t nodes : node_sweep()) {
        std::vector<runtime::YcsbPoint> points(3);
        for (int p = 0; p < 3; ++p) {
          points[p].protocol = protocols[p];
          points[p].num_nodes = nodes;
          points[p].total_keys = keys;
          points[p].read_only_ratio = ro;
        }
        auto results = runtime::run_ycsb_matrix(points, scale);
        double tput[3];
        for (int p = 0; p < 3; ++p) tput[p] = results[p].throughput_tps();
        table.add_row({std::to_string(keys), std::to_string(nodes),
                       Table::fmt(tput[0] / 1000.0),
                       Table::fmt(tput[1] / 1000.0),
                       Table::fmt(tput[2] / 1000.0),
                       Table::fmt(tput[1] > 0 ? tput[0] / tput[1] : 0, 2),
                       Table::fmt(tput[2] > 0 ? tput[0] / tput[2] : 0, 2)});
      }
    }
    table.print(std::cout);
  }
  return 0;
}
