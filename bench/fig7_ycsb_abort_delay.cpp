// Figure 7: YCSB abort rate at 20 nodes when Propagate messages are
// intentionally delayed by 1 ms (the paper's ~5x network slowdown), for
// 20%/50% read-only mixes over 50k/100k/500k keys, FW-KV vs Walter.
#include "bench_common.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Figure 7: YCSB abort rate with delayed Propagate (20 nodes)",
      "Walter aborts ~2x FW-KV on average when propagation lags, because "
      "YCSB updates must read the freshest version to validate; without "
      "delay both stay below ~10%");

  const auto scale = runtime::ExperimentScale::from_env();
  const std::uint32_t nodes = node_sweep().back();

  for (double ro : {0.2, 0.5}) {
    Table table("YCSB update abort rate, " + Table::fmt(ro * 100, 0) +
                    "% read-only",
                {"keys", "FW-KV", "Walter", "FW-KV delayed", "Walter delayed",
                 "Walter/FW-KV (delayed)"});
    for (std::uint64_t keys : {std::uint64_t{50'000}, std::uint64_t{100'000},
                               std::uint64_t{500'000}}) {
      std::vector<runtime::YcsbPoint> points;
      for (auto delay : {std::chrono::nanoseconds{0},
                         std::chrono::nanoseconds{std::chrono::milliseconds(1)}}) {
        for (Protocol p : {Protocol::kFwKv, Protocol::kWalter}) {
          runtime::YcsbPoint point;
          point.protocol = p;
          point.num_nodes = nodes;
          point.total_keys = keys;
          point.read_only_ratio = ro;
          point.propagate_extra_delay = delay;
          points.push_back(point);
        }
      }
      auto results = runtime::run_ycsb_matrix(points, scale);
      double rate[4];
      for (int i = 0; i < 4; ++i) rate[i] = results[i].abort_rate();
      table.add_row({std::to_string(keys), Table::fmt_pct(rate[0]),
                     Table::fmt_pct(rate[1]), Table::fmt_pct(rate[2]),
                     Table::fmt_pct(rate[3]),
                     Table::fmt(rate[2] > 0 ? rate[3] / rate[2] : 0, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}
