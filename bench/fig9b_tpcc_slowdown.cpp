// Figure 9(b): FW-KV's throughput slowdown relative to Walter at 20 nodes
// while varying warehouses per node (8/16/32), for 20%/50% read-only mixes.
#include "bench_common.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Figure 9(b): FW-KV slowdown vs Walter by warehouse count (20 nodes)",
      "slowdown shrinks as warehouses grow (contention drops and version-"
      "access-sets stay small); at 8 W/n the 20% read-only mix outperforms "
      "the 50% mix because large read-access-sets are costly");

  const auto scale = runtime::ExperimentScale::from_env();
  const std::uint32_t nodes = node_sweep().back();

  Table table("FW-KV slowdown vs Walter (%)",
              {"W/n", "20% ro", "50% ro"});
  for (std::uint32_t wpn : {8u, 16u, 32u}) {
    std::vector<std::string> row{std::to_string(wpn)};
    for (double ro : {0.2, 0.5}) {
      std::vector<runtime::TpccPoint> points(2);
      points[0].protocol = Protocol::kFwKv;
      points[1].protocol = Protocol::kWalter;
      for (auto& point : points) {
        point.num_nodes = nodes;
        point.warehouses_per_node = wpn;
        point.read_only_ratio = ro;
      }
      auto results = runtime::run_tpcc_matrix(points, scale);
      const double tput[2] = {results[0].throughput_tps(),
                              results[1].throughput_tps()};
      const double slowdown =
          tput[1] > 0 ? (tput[1] - tput[0]) / tput[1] * 100.0 : 0.0;
      row.push_back(Table::fmt(slowdown));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
