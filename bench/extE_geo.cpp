// Extension E: geo-distributed deployment. Walter (SOSP'11) was built for
// geo-replication; this experiment places the cluster in two regions with
// a high-latency WAN between them and measures what FW-KV's fresh reads
// cost and buy when propagation crosses an ocean.
#include "bench_common.hpp"
#include "runtime/driver.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Extension E: two-region geo deployment (6 nodes, 3 per region)",
      "cross-region propagation makes Walter snapshots very stale; FW-KV "
      "pays WAN round-trips for remote first reads but never serves a "
      "committed-before-start stale value");

  const auto scale = runtime::ExperimentScale::from_env();

  Table table("Geo deployment (YCSB 20k keys, 50% read-only)",
              {"WAN latency", "protocol", "kTx/s", "abort",
               "stale reads", "mean gap"});
  for (auto wan : {std::chrono::microseconds(2'000),
                   std::chrono::microseconds(10'000)}) {
    for (Protocol p : {Protocol::kFwKv, Protocol::kWalter}) {
      ClusterConfig cfg;
      cfg.num_nodes = 6;
      cfg.protocol = p;
      cfg.net.one_way_latency = scale.one_way_latency;
      cfg.net.link_latency = net::SimNetwork::two_region_matrix(
          6, 3, scale.one_way_latency, wan);
      cfg.net.jitter = std::chrono::microseconds(50);
      Cluster cluster(cfg);
      ycsb::YcsbConfig ycfg;
      ycfg.total_keys = 20'000;
      ycfg.read_only_ratio = 0.5;
      ycsb::YcsbWorkload workload(ycfg);
      workload.load(cluster);

      runtime::DriverConfig dcfg;
      dcfg.clients_per_node = scale.clients_per_node;
      dcfg.warmup = scale.warmup;
      dcfg.measure = scale.measure;
      auto result = runtime::run_driver(cluster, workload, dcfg);
      table.add_row(
          {Table::fmt(std::chrono::duration<double, std::milli>(wan).count(),
                      0) + " ms",
           protocol_name(p), Table::fmt(result.throughput_tps() / 1000),
           Table::fmt_pct(result.abort_rate()),
           Table::fmt_pct(result.stale_read_fraction(), 2),
           Table::fmt(result.mean_freshness_gap(), 3)});
    }
  }
  table.print(std::cout);
  return 0;
}
