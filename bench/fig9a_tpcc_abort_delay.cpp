// Figure 9(a): TPC-C abort rate at 20 nodes with 16/32 warehouses per node
// when Propagate messages are delayed by 1 ms, FW-KV vs Walter.
#include "bench_common.hpp"

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Figure 9(a): TPC-C abort rate with delayed Propagate (20 nodes)",
      "Walter ~4x FW-KV under delay: TPC-C's first accessed key is usually "
      "the warehouse, which FW-KV reads at the latest version; without "
      "delay the two are comparable");

  const auto scale = runtime::ExperimentScale::from_env();
  const std::uint32_t nodes = node_sweep().back();

  for (double ro : {0.2, 0.5}) {
    Table table("TPC-C update abort rate, " + Table::fmt(ro * 100, 0) +
                    "% read-only",
                {"W/n", "FW-KV", "Walter", "FW-KV delayed", "Walter delayed",
                 "Walter/FW-KV (delayed)"});
    for (std::uint32_t wpn : {16u, 32u}) {
      std::vector<runtime::TpccPoint> points;
      for (auto delay : {std::chrono::nanoseconds{0},
                         std::chrono::nanoseconds{std::chrono::milliseconds(1)}}) {
        for (Protocol p : {Protocol::kFwKv, Protocol::kWalter}) {
          runtime::TpccPoint point;
          point.protocol = p;
          point.num_nodes = nodes;
          point.warehouses_per_node = wpn;
          point.read_only_ratio = ro;
          point.propagate_extra_delay = delay;
          points.push_back(point);
        }
      }
      auto results = runtime::run_tpcc_matrix(points, scale);
      double rate[4];
      for (int i = 0; i < 4; ++i) rate[i] = results[i].abort_rate();
      table.add_row({std::to_string(wpn), Table::fmt_pct(rate[0]),
                     Table::fmt_pct(rate[1]), Table::fmt_pct(rate[2]),
                     Table::fmt_pct(rate[3]),
                     Table::fmt(rate[2] > 0 ? rate[3] / rate[2] : 0, 2)});
    }
    table.print(std::cout);
  }
  return 0;
}
