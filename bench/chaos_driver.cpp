// Chaos sweep: YCSB under the deterministic fault injector, sweeping the
// per-message drop/duplicate/reorder probability for all three protocols.
// Shows the cost of recovery (abort rate, latency) as the network degrades
// and prints the recovery-counter table so a run's fault activity is
// visible. At 0% the fault plan is inactive and results match a plain run.
#include <chrono>

#include "bench_common.hpp"
#include "workload/ycsb.hpp"

namespace {

fwkv::runtime::RunResult run_point(fwkv::Protocol protocol, double fault_prob,
                                   std::uint64_t seed,
                                   const fwkv::runtime::ExperimentScale& scale,
                                   fwkv::NodeStats::Snapshot* node_stats,
                                   std::ostream* recovery_out) {
  using namespace fwkv;
  using namespace std::chrono_literals;

  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.protocol = protocol;
  cfg.net.one_way_latency = scale.one_way_latency;
  cfg.net.faults = net::FaultPlan::uniform(seed, fault_prob, fault_prob,
                                           fault_prob);
  // Recovery timeouts scaled to the simulated RTT so retries fire within
  // the measurement window instead of the reliable-network defaults.
  cfg.protocol_config.rpc_timeout = 200ms;
  cfg.protocol_config.prepare_timeout = 20ms;
  cfg.protocol_config.decide_ack_timeout = 5ms;
  cfg.protocol_config.gap_request_delay = 2ms;
  Cluster cluster(cfg);

  ycsb::YcsbConfig wl_cfg;
  wl_cfg.total_keys = 10'000;
  wl_cfg.read_only_ratio = 0.2;
  ycsb::YcsbWorkload workload(wl_cfg);
  workload.load(cluster);

  runtime::DriverConfig driver;
  driver.clients_per_node = scale.clients_per_node;
  driver.warmup = scale.warmup;
  driver.measure = scale.measure;
  auto result = runtime::run_driver(cluster, workload, driver);
  cluster.quiesce();
  if (node_stats) *node_stats = cluster.aggregate_stats();
  if (recovery_out) {
    runtime::fault_recovery_table(cluster.aggregate_stats(),
                                  cluster.network())
        .print(*recovery_out);
  }
  return result;
}

}  // namespace

int main() {
  using namespace fwkv;
  using namespace fwkv::bench;
  using runtime::Table;

  print_header(
      "Chaos sweep: YCSB under drop/duplicate/reorder faults (4 nodes)",
      "throughput degrades smoothly with the fault rate and every run "
      "stays live; abort rates rise with drops because lost Prepares "
      "become timeout aborts");

  auto scale = runtime::ExperimentScale::from_env();
  scale.trials = 1;  // each fault rate is one seeded deterministic plan

  const std::uint64_t seed = 0xC0A05EEDull;
  const double sweep[] = {0.0, 0.01, 0.02, 0.05, 0.10};
  const Protocol protocols[] = {Protocol::kFwKv, Protocol::kWalter,
                                Protocol::kTwoPC};

  for (Protocol p : protocols) {
    Table table(std::string("chaos sweep, ") + protocol_name(p),
                {"fault %", "tput (tx/s)", "abort rate", "mean lat (us)",
                 "prep retries", "decide retries", "dup drops",
                 "gap req/resend"});
    for (double prob : sweep) {
      NodeStats::Snapshot nodes;
      auto r = run_point(p, prob, seed, scale, &nodes, nullptr);
      table.add_row({Table::fmt(prob * 100, 0), Table::fmt(r.throughput_tps()),
                     Table::fmt_pct(r.abort_rate()),
                     Table::fmt(r.mean_latency_us()),
                     std::to_string(nodes.prepare_retries),
                     std::to_string(nodes.decide_retries),
                     std::to_string(nodes.dup_drops),
                     std::to_string(nodes.gap_requests) + "/" +
                         std::to_string(nodes.gap_resends)});
    }
    table.print(std::cout);
  }

  std::cout << "Recovery-counter detail for the heaviest point (10% faults, "
               "FW-KV):\n\n";
  run_point(Protocol::kFwKv, 0.10, seed, scale, nullptr, &std::cout);
  return 0;
}
