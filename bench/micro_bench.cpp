// Micro-benchmarks (google-benchmark) for the building blocks and the
// design-choice ablations called out in DESIGN.md §5:
//   * vector-clock operations (the per-read/commit metadata cost)
//   * version selection: FW-KV read-only vs update rule vs Walter rule
//     (the cost of freshness)
//   * access-set maintenance and Remove (the VAS ablation)
//   * lock table, codec, consistent hashing, workload generators
#include <benchmark/benchmark.h>

#include "common/consistent_hash.hpp"
#include "common/rng.hpp"
#include "common/vector_clock.hpp"
#include "net/codec.hpp"
#include "store/lock_table.hpp"
#include "store/mv_store.hpp"
#include "store/version_chain.hpp"

namespace fwkv {
namespace {

void BM_VectorClockMerge(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorClock a(n);
  VectorClock b(n);
  for (std::size_t i = 0; i < n; ++i) b[i] = i * 3 + 1;
  for (auto _ : state) {
    a.merge(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VectorClockMerge)->Arg(5)->Arg(20)->Arg(64);

void BM_VectorClockLeqMasked(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorClock a(n);
  VectorClock b(n);
  std::vector<bool> mask(n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i] = i;
    b[i] = i + 1;
    mask[i] = (i % 2) == 0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.leq_masked(b, mask));
  }
}
BENCHMARK(BM_VectorClockLeqMasked)->Arg(5)->Arg(20)->Arg(64);

store::VersionChain make_chain(std::size_t versions, std::size_t nodes) {
  store::VersionChain chain;
  Rng rng(7);
  for (std::size_t v = 0; v < versions; ++v) {
    VectorClock vc(nodes);
    const auto origin = static_cast<NodeId>(v % nodes);
    vc[origin] = v + 1;
    chain.install("value-" + std::to_string(v), std::move(vc), origin, v + 1);
  }
  return chain;
}

void BM_SelectReadOnly(benchmark::State& state) {
  const auto versions = static_cast<std::size_t>(state.range(0));
  auto chain = make_chain(versions, 20);
  VectorClock tvc(20);
  for (std::size_t i = 0; i < 20; ++i) tvc[i] = versions;
  std::vector<bool> mask(20, true);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    auto r = chain.select_read_only(tvc, mask, TxId(0, 0, ++seq));
    benchmark::DoNotOptimize(r);
  }
  // Selection inserts reader ids; report the resulting VAS burden.
  state.counters["vas_size"] = static_cast<double>(
      chain.latest().access_set.size());
}
BENCHMARK(BM_SelectReadOnly)->Arg(2)->Arg(16)->Arg(64);

void BM_SelectUpdate(benchmark::State& state) {
  const auto versions = static_cast<std::size_t>(state.range(0));
  auto chain = make_chain(versions, 20);
  VectorClock tvc(20);
  for (std::size_t i = 0; i < 20; ++i) tvc[i] = versions / 2;
  std::vector<bool> mask(20, false);
  mask[3] = true;
  for (auto _ : state) {
    auto r = chain.select_update(tvc, mask, true);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SelectUpdate)->Arg(2)->Arg(16)->Arg(64);

void BM_SelectWalter(benchmark::State& state) {
  const auto versions = static_cast<std::size_t>(state.range(0));
  auto chain = make_chain(versions, 20);
  VectorClock tvc(20);
  for (std::size_t i = 0; i < 20; ++i) tvc[i] = versions / 2;
  for (auto _ : state) {
    auto r = chain.select_walter(tvc);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_SelectWalter)->Arg(2)->Arg(16)->Arg(64);

void BM_MVStoreReadOnlyWithRemove(benchmark::State& state) {
  store::MVStore store;
  store.load(1, "v", 20);
  VectorClock tvc(20);
  std::vector<bool> mask(20, false);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    TxId reader(1, 1, ++seq);
    auto r = store.read_read_only(1, tvc, mask, reader);
    benchmark::DoNotOptimize(r);
    store.remove_tx(reader);
  }
}
BENCHMARK(BM_MVStoreReadOnlyWithRemove);

void BM_LockTableExclusive(benchmark::State& state) {
  store::LockTable locks;
  const TxId owner(1, 2, 3);
  for (auto _ : state) {
    locks.lock_exclusive(42, owner, std::chrono::milliseconds(1));
    locks.unlock_exclusive(42, owner);
  }
}
BENCHMARK(BM_LockTableExclusive);

void BM_LockTableSharedContention(benchmark::State& state) {
  static store::LockTable locks;
  const TxId owner(1, static_cast<std::uint32_t>(state.thread_index()), 1);
  for (auto _ : state) {
    locks.lock_shared(7, owner, std::chrono::milliseconds(1));
    locks.unlock_shared(7, owner);
  }
}
BENCHMARK(BM_LockTableSharedContention)->Threads(1)->Threads(4);

void BM_CodecRoundTripRead(benchmark::State& state) {
  net::ReadRequest req;
  req.rpc_id = 77;
  req.reply_to = 3;
  req.tx.id = TxId(1, 2, 3);
  req.tx.read_only = true;
  req.tx.vc = VectorClock(20);
  req.tx.has_read = AccessVector(20);
  req.key = 0xdeadbeef;
  net::Message m = req;
  for (auto _ : state) {
    auto bytes = net::encode_message(m);
    auto decoded = net::decode_message(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CodecRoundTripRead);

void BM_CodecRoundTripDecide(benchmark::State& state) {
  net::DecideMessage d;
  d.tx = TxId(1, 2, 3);
  d.outcome = true;
  d.origin = 4;
  d.seq_no = 99;
  d.commit_vc = VectorClock(20);
  for (int i = 0; i < 10; ++i) {
    d.writes.push_back({static_cast<Key>(i), "twelve-bytes"});
    d.collected_set.push_back(TxId(2, 3, static_cast<std::uint32_t>(i)));
  }
  net::Message m = d;
  for (auto _ : state) {
    auto bytes = net::encode_message(m);
    auto decoded = net::decode_message(bytes);
    benchmark::DoNotOptimize(decoded);
  }
}
BENCHMARK(BM_CodecRoundTripDecide);

void BM_ConsistentHash(benchmark::State& state) {
  ConsistentHashRing ring(20);
  Key k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.node_for(++k));
  }
}
BENCHMARK(BM_ConsistentHash);

void BM_Zipfian(benchmark::State& state) {
  ZipfianGenerator zipf(1'000'000, 0.99);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.next(rng));
  }
}
BENCHMARK(BM_Zipfian);

void BM_RngAString(benchmark::State& state) {
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_astring(12, 12));
  }
}
BENCHMARK(BM_RngAString);

}  // namespace
}  // namespace fwkv
