// TPC-C end-to-end smoke: loads a small cluster and runs the mixed
// workload under every protocol.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/session.hpp"
#include "runtime/driver.hpp"
#include "workload/tpcc.hpp"

namespace fwkv {
namespace {

class TpccSmokeTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(TpccSmokeTest, MixedWorkloadRuns) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = GetParam();
  cfg.net.one_way_latency = std::chrono::microseconds(5);
  cfg.mapper = tpcc::TpccWorkload::make_mapper(cfg.num_nodes);
  Cluster cluster(cfg);

  tpcc::TpccConfig tcfg;
  tcfg.warehouses_per_node = 2;
  tcfg.customers_per_district = 20;
  tcfg.items = 200;
  tcfg.read_only_ratio = 0.5;
  tpcc::TpccWorkload workload(tcfg, cfg.num_nodes);
  workload.load(cluster);

  runtime::DriverConfig dcfg;
  dcfg.clients_per_node = 2;
  dcfg.warmup = std::chrono::milliseconds(50);
  dcfg.measure = std::chrono::milliseconds(300);
  auto result = runtime::run_driver(cluster, workload, dcfg);

  EXPECT_GT(result.clients.commits(), 0u);
  EXPECT_GT(result.clients.ro_commits, 0u);
  EXPECT_GT(result.clients.update_commits, 0u);
  ASSERT_TRUE(cluster.quiesce());
}

TEST_P(TpccSmokeTest, IndividualProfilesCommit) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.protocol = GetParam();
  cfg.net.one_way_latency = std::chrono::microseconds(2);
  cfg.mapper = tpcc::TpccWorkload::make_mapper(cfg.num_nodes);
  Cluster cluster(cfg);

  tpcc::TpccConfig tcfg;
  tcfg.warehouses_per_node = 1;
  tcfg.customers_per_district = 10;
  tcfg.items = 100;
  tpcc::TpccWorkload workload(tcfg, cfg.num_nodes);
  workload.load(cluster);

  Session s = cluster.make_session(0, 0);
  Rng rng(42);
  runtime::ClientStats stats;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(workload.run_new_order(s, rng, stats)) << "NewOrder " << i;
    EXPECT_TRUE(workload.run_payment(s, rng, stats)) << "Payment " << i;
    EXPECT_TRUE(workload.run_delivery(s, rng, stats)) << "Delivery " << i;
    EXPECT_TRUE(workload.run_order_status(s, rng, stats)) << "OrderStatus " << i;
    EXPECT_TRUE(workload.run_stock_level(s, rng, stats)) << "StockLevel " << i;
  }
  EXPECT_EQ(stats.ro_commits, 20u);
  EXPECT_EQ(stats.update_commits, 30u);
  ASSERT_TRUE(cluster.quiesce());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, TpccSmokeTest,
                         ::testing::Values(Protocol::kFwKv, Protocol::kWalter,
                                           Protocol::kTwoPC),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kFwKv:
                               return "FwKv";
                             case Protocol::kWalter:
                               return "Walter";
                             default:
                               return "TwoPC";
                           }
                         });

}  // namespace
}  // namespace fwkv
