#include <gtest/gtest.h>

#include "workload/ycsb.hpp"

namespace fwkv::ycsb {
namespace {

TEST(YcsbTest, LoadPopulatesAllKeys) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.net.one_way_latency = std::chrono::microseconds(5);
  Cluster cluster(cfg);
  YcsbConfig ycfg;
  ycfg.total_keys = 500;
  YcsbWorkload workload(ycfg);
  workload.load(cluster);

  Session s = cluster.make_session(0, 0);
  auto tx = s.begin(true);
  for (Key k : {Key{0}, Key{250}, Key{499}}) {
    auto v = s.read(tx, k);
    ASSERT_TRUE(v.has_value()) << "key " << k << " missing";
    EXPECT_EQ(v->size(), ycfg.value_size);
  }
  EXPECT_FALSE(s.read(tx, 500).has_value());
  s.commit(tx);
}

TEST(YcsbTest, UniformKeysStayInRange) {
  YcsbConfig cfg;
  cfg.total_keys = 1000;
  YcsbWorkload workload(cfg);
  Rng rng(1);
  for (int i = 0; i < 5000; ++i) {
    EXPECT_LT(workload.pick_key(rng), cfg.total_keys);
  }
}

TEST(YcsbTest, ZipfKeysSkewed) {
  YcsbConfig cfg;
  cfg.total_keys = 10000;
  cfg.zipf_theta = 0.99;
  YcsbWorkload workload(cfg);
  Rng rng(2);
  int head = 0;
  for (int i = 0; i < 5000; ++i) {
    if (workload.pick_key(rng) < 100) ++head;
  }
  EXPECT_GT(head, 1500);
}

TEST(YcsbTest, ValueSizeMatchesConfig) {
  Rng rng(3);
  EXPECT_EQ(YcsbWorkload::make_value(rng, 12).size(), 12u);
  EXPECT_EQ(YcsbWorkload::make_value(rng, 100).size(), 100u);
}

TEST(YcsbTest, MixMatchesReadOnlyRatio) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.net.one_way_latency = std::chrono::microseconds(5);
  Cluster cluster(cfg);
  YcsbConfig ycfg;
  ycfg.total_keys = 2000;
  ycfg.read_only_ratio = 0.5;
  YcsbWorkload workload(ycfg);
  workload.load(cluster);

  Session s = cluster.make_session(0, 0);
  Rng rng(4);
  runtime::ClientStats stats;
  for (int i = 0; i < 400; ++i) workload.execute_one(s, rng, stats);
  const double ro_share =
      static_cast<double>(stats.ro_commits) /
      static_cast<double>(stats.ro_commits + stats.update_commits);
  EXPECT_NEAR(ro_share, 0.5, 0.08);
  ASSERT_TRUE(cluster.quiesce());
}

TEST(YcsbTest, TransactionsTouchConfiguredKeyCount) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.net.one_way_latency = std::chrono::microseconds(5);
  Cluster cluster(cfg);
  YcsbConfig ycfg;
  ycfg.total_keys = 100;
  ycfg.read_only_ratio = 1.0;  // all read-only: reads == 2 per tx
  ycfg.keys_per_tx = 2;
  YcsbWorkload workload(ycfg);
  workload.load(cluster);

  Session s = cluster.make_session(0, 0);
  Rng rng(5);
  runtime::ClientStats stats;
  for (int i = 0; i < 50; ++i) workload.execute_one(s, rng, stats);
  EXPECT_EQ(stats.reads, 100u);
  EXPECT_EQ(stats.ro_commits, 50u);
  ASSERT_TRUE(cluster.quiesce());
}

}  // namespace
}  // namespace fwkv::ycsb
