// Transaction handle + TxId unit tests.
#include <gtest/gtest.h>

#include <unordered_set>

#include "core/transaction.hpp"

namespace fwkv {
namespace {

TEST(TxIdTest, FieldPackingRoundTrips) {
  TxId id(17, 3, 12345);
  EXPECT_EQ(id.node(), 17u);
  EXPECT_EQ(id.client(), 3u);
  EXPECT_EQ(id.local_seq(), 12345u);
  EXPECT_TRUE(id.valid());
}

TEST(TxIdTest, InvalidIsDistinct) {
  EXPECT_FALSE(kInvalidTxId.valid());
  EXPECT_NE(TxId(0, 0, 1), kInvalidTxId);
  EXPECT_TRUE(TxId(0, 0, 1).valid());
}

TEST(TxIdTest, DistinctTuplesDistinctIds) {
  std::unordered_set<TxId> seen;
  for (NodeId n = 0; n < 4; ++n) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      for (std::uint32_t s = 1; s <= 16; ++s) {
        EXPECT_TRUE(seen.insert(TxId(n, c, s)).second);
      }
    }
  }
  EXPECT_EQ(seen.size(), 4u * 4 * 16);
}

TEST(TxIdTest, HashSpreadsStructuredIds) {
  // TxIds differ only in low bits; the hash must not collide trivially.
  std::unordered_set<std::size_t> hashes;
  std::hash<TxId> h;
  for (std::uint32_t s = 1; s <= 1000; ++s) {
    hashes.insert(h(TxId(1, 1, s)));
  }
  EXPECT_GT(hashes.size(), 990u);
}

TEST(TxIdTest, ToString) {
  EXPECT_EQ(to_string(TxId(1, 2, 3)), "T(1.2.3)");
}

TEST(TransactionTest, InitialState) {
  Transaction tx(TxId(0, 0, 1), /*read_only=*/false, /*cluster_size=*/4);
  EXPECT_EQ(tx.status(), TxStatus::kActive);
  EXPECT_EQ(tx.abort_reason(), AbortReason::kNone);
  EXPECT_FALSE(tx.read_only());
  EXPECT_EQ(tx.vc().size(), 4u);
  EXPECT_EQ(tx.has_read().size(), 4u);
  EXPECT_FALSE(tx.has_read().any());
  EXPECT_TRUE(tx.write_set().empty());
  EXPECT_EQ(tx.reads_issued(), 0u);
}

TEST(TransactionTest, WriteBufferLastWriteWins) {
  Transaction tx(TxId(0, 0, 1), false, 2);
  tx.buffer_write(7, "first");
  tx.buffer_write(7, "second");
  EXPECT_EQ(tx.write_set().size(), 1u);
  EXPECT_EQ(tx.written_value(7), "second");
  EXPECT_FALSE(tx.written_value(8).has_value());
}

TEST(TransactionTest, ReadCache) {
  Transaction tx(TxId(0, 0, 1), true, 2);
  EXPECT_FALSE(tx.cached_read(1).has_value());
  tx.cache_read(1, "v");
  EXPECT_EQ(tx.cached_read(1), "v");
  // First-cached value sticks (snapshot semantics).
  tx.cache_read(1, "other");
  EXPECT_EQ(tx.cached_read(1), "v");
}

TEST(TransactionTest, ReadKeysRecorded) {
  Transaction tx(TxId(0, 0, 1), true, 2);
  tx.record_read_key(/*site=*/1, /*key=*/5);
  tx.record_read_key(/*site=*/0, /*key=*/9);
  EXPECT_EQ(tx.read_registrations().size(), 2u);
}

TEST(TransactionTest, RegistrationBufferGroupsBySite) {
  // The per-transaction registration buffer flushes as one batched Remove
  // per contacted site: grouping must keep every key under its site.
  Transaction tx(TxId(0, 0, 1), true, 3);
  tx.record_read_key(1, 5);
  tx.record_read_key(0, 9);
  tx.record_read_key(1, 7);
  auto grouped = tx.registrations_by_site();
  ASSERT_EQ(grouped.size(), 2u);
  EXPECT_EQ(grouped[0].first, 1u);
  EXPECT_EQ(grouped[0].second, (std::vector<Key>{5, 7}));
  EXPECT_EQ(grouped[1].first, 0u);
  EXPECT_EQ(grouped[1].second, (std::vector<Key>{9}));
}

TEST(TransactionTest, ValidationSetKeepsFirstObservation) {
  Transaction tx(TxId(0, 0, 1), false, 2);
  tx.record_validation(5, 10);
  tx.record_validation(5, 11);  // re-read: first observation wins
  EXPECT_EQ(tx.validation_set().at(5), 10u);
}

TEST(TransactionTest, FreshnessAccounting) {
  Transaction tx(TxId(0, 0, 1), true, 2);
  tx.record_read_freshness(/*returned=*/5, /*latest=*/5);
  tx.record_read_freshness(/*returned=*/3, /*latest=*/7);
  EXPECT_EQ(tx.reads_issued(), 2u);
  EXPECT_EQ(tx.stale_reads(), 1u);
  EXPECT_EQ(tx.freshness_gap_sum(), 4u);
}

TEST(TransactionTest, StatusTransitions) {
  Transaction tx(TxId(0, 0, 1), false, 2);
  tx.mark_aborted(AbortReason::kLockTimeout);
  EXPECT_EQ(tx.status(), TxStatus::kAborted);
  EXPECT_EQ(tx.abort_reason(), AbortReason::kLockTimeout);

  Transaction tx2(TxId(0, 0, 2), false, 2);
  tx2.mark_committed();
  EXPECT_EQ(tx2.status(), TxStatus::kCommitted);
}

TEST(EnumNamesTest, AllCovered) {
  EXPECT_STREQ(protocol_name(Protocol::kFwKv), "FW-KV");
  EXPECT_STREQ(protocol_name(Protocol::kWalter), "Walter");
  EXPECT_STREQ(protocol_name(Protocol::kTwoPC), "2PC");
  EXPECT_STREQ(abort_reason_name(AbortReason::kNone), "none");
  EXPECT_STREQ(abort_reason_name(AbortReason::kLockTimeout), "lock-timeout");
  EXPECT_STREQ(abort_reason_name(AbortReason::kValidation), "validation");
  EXPECT_STREQ(abort_reason_name(AbortReason::kVoteTimeout), "vote-timeout");
  EXPECT_STREQ(abort_reason_name(AbortReason::kUserAbort), "user");
}

}  // namespace
}  // namespace fwkv
