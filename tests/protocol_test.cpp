// Cross-protocol behavioural tests: transaction semantics, abort reasons,
// commit machinery, in-order application, propagation batching.
#include <gtest/gtest.h>

#include <thread>

#include "core/cluster.hpp"
#include "core/mv_node.hpp"
#include "core/session.hpp"

namespace fwkv {
namespace {

using namespace std::chrono_literals;

ClusterConfig base_config(Protocol p, std::uint32_t nodes = 3) {
  ClusterConfig cfg;
  cfg.num_nodes = nodes;
  cfg.protocol = p;
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  cfg.net.serialize_messages = true;
  return cfg;
}

Key key_on(const Cluster& cluster, NodeId node, Key start = 0) {
  Key k = start;
  while (cluster.node_for_key(k) != node) ++k;
  return k;
}

class ProtocolTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProtocolTest, EmptyTransactionCommits) {
  Cluster cluster(base_config(GetParam()));
  Session s = cluster.make_session(0, 0);
  auto tx = s.begin();
  EXPECT_TRUE(s.commit(tx));
  EXPECT_EQ(tx.status(), TxStatus::kCommitted);
}

TEST_P(ProtocolTest, WriteOnlyTransaction) {
  Cluster cluster(base_config(GetParam()));
  cluster.load(1, "old");
  Session s = cluster.make_session(0, 0);
  auto tx = s.begin();
  s.write(tx, 1, "new");
  ASSERT_TRUE(s.commit(tx));
  ASSERT_TRUE(cluster.quiesce());
  auto check = s.begin(true);
  EXPECT_EQ(s.read(check, 1), "new");
  s.commit(check);
}

TEST_P(ProtocolTest, RepeatableReadsWithinTransaction) {
  Cluster cluster(base_config(GetParam()));
  cluster.load(1, "v1");
  Session reader = cluster.make_session(0, 0);
  Session writer = cluster.make_session(1, 0);

  auto tx = reader.begin(true);
  EXPECT_EQ(reader.read(tx, 1), "v1");
  auto wtx = writer.begin();
  writer.write(wtx, 1, "v2");
  ASSERT_TRUE(writer.commit(wtx));
  ASSERT_TRUE(cluster.quiesce());
  // The same transaction re-reads its own snapshot value.
  EXPECT_EQ(reader.read(tx, 1), "v1");
  if (GetParam() == Protocol::kTwoPC) {
    // The serializable baseline validates reads at commit: the overwrite
    // forces an abort (this is why its read-only transactions are costly).
    EXPECT_FALSE(reader.commit(tx));
  } else {
    // PSI read-only transactions are abort-free.
    EXPECT_TRUE(reader.commit(tx));
  }
}

TEST_P(ProtocolTest, WriteWriteConflictAbortsExactlyOne) {
  // Two transactions read-modify-write the same key concurrently: exactly
  // one commits, under every protocol (PSI forbids lost updates).
  Cluster cluster(base_config(GetParam()));
  cluster.load(5, "0");
  Session a = cluster.make_session(0, 0);
  Session b = cluster.make_session(1, 0);

  auto ta = a.begin();
  auto tb = b.begin();
  ASSERT_TRUE(a.read(ta, 5).has_value());
  ASSERT_TRUE(b.read(tb, 5).has_value());
  a.write(ta, 5, "from-a");
  b.write(tb, 5, "from-b");
  const bool a_ok = a.commit(ta);
  ASSERT_TRUE(cluster.quiesce());
  const bool b_ok = b.commit(tb);
  EXPECT_TRUE(a_ok);
  EXPECT_FALSE(b_ok) << "lost update: both conflicting writers committed";
  EXPECT_EQ(tb.abort_reason(), AbortReason::kValidation);
}

TEST_P(ProtocolTest, AbortReleasesLocksForLaterTransactions) {
  Cluster cluster(base_config(GetParam()));
  cluster.load(5, "0");
  Session a = cluster.make_session(0, 0);
  Session b = cluster.make_session(1, 0);

  // Make b abort on validation.
  auto tb = b.begin();
  ASSERT_TRUE(b.read(tb, 5).has_value());
  auto ta = a.begin();
  ASSERT_TRUE(a.read(ta, 5).has_value());
  a.write(ta, 5, "x");
  ASSERT_TRUE(a.commit(ta));
  ASSERT_TRUE(cluster.quiesce());
  b.write(tb, 5, "y");
  ASSERT_FALSE(b.commit(tb));

  // The key must be lockable again.
  auto tc = a.begin();
  ASSERT_TRUE(a.read(tc, 5).has_value());
  a.write(tc, 5, "z");
  EXPECT_TRUE(a.commit(tc));
}

TEST_P(ProtocolTest, MultiSiteCommitInstallsEverywhere) {
  Cluster cluster(base_config(GetParam()));
  const Key k0 = key_on(cluster, 0);
  const Key k1 = key_on(cluster, 1);
  const Key k2 = key_on(cluster, 2);
  cluster.load(k0, "a0");
  cluster.load(k1, "b0");
  cluster.load(k2, "c0");

  Session s = cluster.make_session(0, 0);
  auto tx = s.begin();
  s.write(tx, k0, "a1");
  s.write(tx, k1, "b1");
  s.write(tx, k2, "c1");
  ASSERT_TRUE(s.commit(tx));
  ASSERT_TRUE(cluster.quiesce());

  auto check = s.begin(true);
  EXPECT_EQ(s.read(check, k0), "a1");
  EXPECT_EQ(s.read(check, k1), "b1");
  EXPECT_EQ(s.read(check, k2), "c1");
  s.commit(check);
}

TEST_P(ProtocolTest, UserAbortDiscardsWrites) {
  Cluster cluster(base_config(GetParam()));
  cluster.load(3, "keep");
  Session s = cluster.make_session(0, 0);
  auto tx = s.begin();
  s.write(tx, 3, "discard");
  s.abort(tx);
  EXPECT_EQ(tx.status(), TxStatus::kAborted);
  EXPECT_EQ(tx.abort_reason(), AbortReason::kUserAbort);
  ASSERT_TRUE(cluster.quiesce());

  auto check = s.begin(true);
  EXPECT_EQ(s.read(check, 3), "keep");
  s.commit(check);
}

TEST_P(ProtocolTest, StatsCountCommitsAndReads) {
  Cluster cluster(base_config(GetParam()));
  cluster.load(1, "x");
  Session s = cluster.make_session(0, 0);
  for (int i = 0; i < 5; ++i) {
    auto tx = s.begin();
    ASSERT_TRUE(s.read(tx, 1).has_value());
    s.write(tx, 1, "v" + std::to_string(i));
    ASSERT_TRUE(s.commit(tx));
  }
  for (int i = 0; i < 3; ++i) {
    auto ro = s.begin(true);
    ASSERT_TRUE(s.read(ro, 1).has_value());
    ASSERT_TRUE(s.commit(ro));
  }
  ASSERT_TRUE(cluster.quiesce());
  auto stats = cluster.aggregate_stats();
  EXPECT_EQ(stats.update_commits, 5u);
  EXPECT_EQ(stats.ro_commits, 3u);
  EXPECT_EQ(stats.reads_served, 8u);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProtocolTest,
                         ::testing::Values(Protocol::kFwKv, Protocol::kWalter,
                                           Protocol::kTwoPC),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kFwKv:
                               return "FwKv";
                             case Protocol::kWalter:
                               return "Walter";
                             default:
                               return "TwoPC";
                           }
                         });

// ---- PSI-specific machinery ----

class PsiProtocolTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(PsiProtocolTest, SiteVcAdvancesWithLocalCommits) {
  Cluster cluster(base_config(GetParam()));
  const Key k = key_on(cluster, 0);
  cluster.load(k, "v");
  Session s = cluster.make_session(0, 0);
  for (int i = 0; i < 4; ++i) {
    auto tx = s.begin();
    s.write(tx, k, "v" + std::to_string(i));
    ASSERT_TRUE(s.commit(tx));
  }
  ASSERT_TRUE(cluster.quiesce());
  auto& node0 = dynamic_cast<MvNodeBase&>(cluster.node(0));
  EXPECT_EQ(node0.curr_seq(), 4u);
  EXPECT_EQ(node0.site_vc()[0], 4u);
}

TEST_P(PsiProtocolTest, PropagationCatchesUpRemoteSiteVcs) {
  Cluster cluster(base_config(GetParam()));
  const Key k = key_on(cluster, 0);
  cluster.load(k, "v");
  Session s = cluster.make_session(0, 0);
  for (int i = 0; i < 3; ++i) {
    auto tx = s.begin();
    s.write(tx, k, "w" + std::to_string(i));
    ASSERT_TRUE(s.commit(tx));
  }
  ASSERT_TRUE(cluster.quiesce());
  for (NodeId n = 0; n < cluster.num_nodes(); ++n) {
    auto& node = dynamic_cast<MvNodeBase&>(cluster.node(n));
    EXPECT_EQ(node.site_vc()[0], 3u) << "node " << n << " missed propagation";
  }
}

TEST_P(PsiProtocolTest, DelayedPropagationBuffersInOrderEvents) {
  auto cfg = base_config(GetParam());
  cfg.net.propagate_extra_delay = 100ms;
  Cluster cluster(cfg);
  const Key local = key_on(cluster, 0);
  const Key remote = key_on(cluster, 1);
  cluster.load(local, "l");
  cluster.load(remote, "r");

  Session s = cluster.make_session(0, 0);
  // Commit 1: purely local at node 0 -> node 1 learns via (delayed)
  // propagate. Commit 2: writes node 1's key -> its Decide reaches node 1
  // quickly but must WAIT (buffer) for commit 1's propagate.
  auto t1 = s.begin();
  s.write(t1, local, "l1");
  ASSERT_TRUE(s.commit(t1));
  auto t2 = s.begin();
  s.write(t2, remote, "r1");
  ASSERT_TRUE(s.commit(t2));

  std::this_thread::sleep_for(20ms);
  // Before the propagate arrives, node 1 must not have applied seq 2.
  auto& node1 = dynamic_cast<MvNodeBase&>(cluster.node(1));
  EXPECT_LT(node1.site_vc()[0], 2u);
  EXPECT_GE(node1.pending_work(), 1u) << "decide was not buffered";

  ASSERT_TRUE(cluster.quiesce(5s));
  EXPECT_EQ(node1.site_vc()[0], 2u);
  EXPECT_EQ(node1.pending_work(), 0u);
  Session s1 = cluster.make_session(1, 2);
  auto ro = s1.begin(true);
  EXPECT_EQ(s1.read(ro, remote), "r1");
  s1.commit(ro);
}

TEST_P(PsiProtocolTest, ReadOnlyTransactionsNeverAbort) {
  Cluster cluster(base_config(GetParam()));
  for (Key k = 0; k < 50; ++k) cluster.load(k, "v");
  std::atomic<bool> stop{false};
  std::atomic<bool> ro_failed{false};
  std::thread writer([&] {
    Session w = cluster.make_session(0, 0);
    int i = 0;
    while (!stop) {
      auto tx = w.begin();
      w.write(tx, static_cast<Key>(i % 50), "w" + std::to_string(i));
      w.commit(tx);
      ++i;
    }
  });
  std::thread reader([&] {
    Session r = cluster.make_session(1, 0);
    int i = 0;
    while (!stop) {
      auto tx = r.begin(true);
      r.read(tx, static_cast<Key>(i % 50));
      r.read(tx, static_cast<Key>((i + 7) % 50));
      if (!r.commit(tx)) ro_failed = true;
      ++i;
    }
  });
  std::this_thread::sleep_for(200ms);
  stop = true;
  writer.join();
  reader.join();
  EXPECT_FALSE(ro_failed.load());
  auto stats = cluster.aggregate_stats();
  EXPECT_GT(stats.ro_commits, 0u);
}

INSTANTIATE_TEST_SUITE_P(PsiProtocols, PsiProtocolTest,
                         ::testing::Values(Protocol::kFwKv, Protocol::kWalter),
                         [](const auto& info) {
                           return info.param == Protocol::kFwKv ? "FwKv"
                                                                : "Walter";
                         });

// ---- FW-KV specific ----

TEST(FwKvTest, FreshFirstReadAcrossNodes) {
  auto cfg = base_config(Protocol::kFwKv, 4);
  cfg.net.propagate_extra_delay = 1s;  // keep remote siteVCs stale
  Cluster cluster(cfg);
  const Key a = key_on(cluster, 1);
  const Key b = key_on(cluster, 2);
  cluster.load(a, "a0");
  cluster.load(b, "b0");

  Session w1 = cluster.make_session(1, 0);
  auto t1 = w1.begin();
  w1.write(t1, a, "a1");
  ASSERT_TRUE(w1.commit(t1));
  Session w2 = cluster.make_session(2, 0);
  auto t2 = w2.begin();
  w2.write(t2, b, "b1");
  ASSERT_TRUE(w2.commit(t2));
  std::this_thread::sleep_for(20ms);

  // A read-only transaction on node 3 reads both keys, each a first
  // contact with a distinct node: both must be the latest versions even
  // though node 3's siteVC knows nothing about the commits.
  Session r = cluster.make_session(3, 0);
  auto ro = r.begin(true);
  EXPECT_EQ(r.read(ro, a), "a1");
  EXPECT_EQ(r.read(ro, b), "b1");
  EXPECT_TRUE(r.commit(ro));
  EXPECT_EQ(ro.stale_reads(), 0u);
}

TEST(FwKvTest, CollectedSetReachesCoordinatorStats) {
  Cluster cluster(base_config(Protocol::kFwKv));
  const Key k = key_on(cluster, 1);
  cluster.load(k, "v");

  // A read-only transaction reads k and stays uncommitted, so its id is in
  // k's access set when the update prepares.
  Session ro_session = cluster.make_session(0, 0);
  auto ro = ro_session.begin(true);
  ASSERT_TRUE(ro_session.read(ro, k).has_value());

  Session up = cluster.make_session(2, 0);
  auto tx = up.begin();
  ASSERT_TRUE(up.read(tx, k).has_value());
  up.write(tx, k, "v2");
  ASSERT_TRUE(up.commit(tx));
  ASSERT_TRUE(cluster.quiesce());

  auto stats = cluster.aggregate_stats();
  EXPECT_EQ(stats.collected_count, 1u);
  EXPECT_GE(stats.collected_sum, 1u) << "anti-dependency was not collected";
  ro_session.commit(ro);
}

TEST(WalterTest, SnapshotFixedAtBegin) {
  auto cfg = base_config(Protocol::kWalter, 3);
  cfg.net.propagate_extra_delay = 1s;
  Cluster cluster(cfg);
  const Key k = key_on(cluster, 1);
  cluster.load(k, "v0");

  Session reader = cluster.make_session(0, 0);
  auto ro = reader.begin(true);

  Session writer = cluster.make_session(1, 0);
  auto up = writer.begin();
  writer.write(up, k, "v1");
  ASSERT_TRUE(writer.commit(up));
  std::this_thread::sleep_for(20ms);

  // Walter: the reader's begin-time snapshot cannot include v1.
  EXPECT_EQ(reader.read(ro, k), "v0");
  reader.commit(ro);
}

TEST(TwoPcTest, ReadOnlyValidationAbortsOnConflict) {
  // 2PC-baseline read-only transactions validate their reads; overwriting
  // a read key before commit forces an abort — exactly the cost PSI's
  // abort-free read-only transactions avoid.
  Cluster cluster(base_config(Protocol::kTwoPC));
  cluster.load(1, "v0");
  Session reader = cluster.make_session(0, 0);
  Session writer = cluster.make_session(1, 0);

  auto ro = reader.begin(true);
  ASSERT_TRUE(reader.read(ro, 1).has_value());

  auto up = writer.begin();
  ASSERT_TRUE(writer.read(up, 1).has_value());
  writer.write(up, 1, "v1");
  ASSERT_TRUE(writer.commit(up));
  ASSERT_TRUE(cluster.quiesce());

  EXPECT_FALSE(reader.commit(ro))
      << "2PC read-only commit must fail validation after an overwrite";
  EXPECT_EQ(ro.abort_reason(), AbortReason::kValidation);
}

}  // namespace
}  // namespace fwkv
