#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <vector>

#include "common/rng.hpp"

namespace fwkv {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.next_range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextRangeDegenerate) {
  Rng rng(3);
  EXPECT_EQ(rng.next_range(9, 9), 9u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NextBoolProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.next_bool(0.2);
  EXPECT_NEAR(hits / 10000.0, 0.2, 0.02);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.next_bool(0.0));
    EXPECT_TRUE(rng.next_bool(1.0));
  }
}

TEST(RngTest, UniformCoverage) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.next_below(10)];
  for (int c : counts) {
    EXPECT_GT(c, 800);
    EXPECT_LT(c, 1200);
  }
}

TEST(RngTest, NurandStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    auto v = rng.nurand(1023, 1, 3000);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 3000u);
  }
}

TEST(RngTest, NurandIsNonUniform) {
  // NURand ORs two uniforms, biasing toward values with more set bits; the
  // resulting distribution must differ measurably from uniform.
  Rng rng(23);
  std::vector<int> counts(8, 0);
  const std::uint64_t span = 8192;
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.nurand(8191, 0, span - 1) * 8 / span];
  }
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_GT(*max_it, *min_it * 3) << "distribution looks uniform";
}

TEST(RngTest, AStringLengthAndCharset) {
  Rng rng(29);
  for (int i = 0; i < 200; ++i) {
    auto s = rng.next_astring(4, 12);
    EXPECT_GE(s.size(), 4u);
    EXPECT_LE(s.size(), 12u);
    for (char c : s) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
  }
}

TEST(RngTest, NStringIsNumeric) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    auto s = rng.next_nstring(9, 9);
    EXPECT_EQ(s.size(), 9u);
    for (char c : s) EXPECT_TRUE(std::isdigit(static_cast<unsigned char>(c)));
  }
}

TEST(ZipfianTest, UniformWhenThetaZero) {
  ZipfianGenerator zipf(100, 0.0);
  Rng rng(37);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.next(rng)];
  const auto [min_it, max_it] = std::minmax_element(counts.begin(), counts.end());
  EXPECT_LT(*max_it, *min_it * 2);
}

TEST(ZipfianTest, SkewConcentratesOnHead) {
  ZipfianGenerator zipf(10000, 0.99);
  Rng rng(41);
  int head = 0;
  const int samples = 20000;
  for (int i = 0; i < samples; ++i) {
    if (zipf.next(rng) < 100) ++head;  // top 1% of keys
  }
  // YCSB's 0.99-zipfian puts well over a third of accesses on the top 1%.
  EXPECT_GT(head, samples / 3);
}

TEST(ZipfianTest, StaysInRange) {
  ZipfianGenerator zipf(50, 0.8);
  Rng rng(43);
  for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf.next(rng), 50u);
}

TEST(ZipfianTest, SingleElementDomain) {
  ZipfianGenerator zipf(1, 0.99);
  Rng rng(47);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.next(rng), 0u);
}

}  // namespace
}  // namespace fwkv
