#include <gtest/gtest.h>

#include <random>

#include "common/vector_clock.hpp"

namespace fwkv {
namespace {

TEST(VectorClockTest, DefaultIsEmpty) {
  VectorClock vc;
  EXPECT_EQ(vc.size(), 0u);
  EXPECT_TRUE(vc.empty());
}

TEST(VectorClockTest, SizedConstructionZeroInitializes) {
  VectorClock vc(5);
  ASSERT_EQ(vc.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(vc[i], 0u);
}

TEST(VectorClockTest, InitializerList) {
  VectorClock vc{1, 2, 3};
  ASSERT_EQ(vc.size(), 3u);
  EXPECT_EQ(vc[0], 1u);
  EXPECT_EQ(vc[2], 3u);
}

TEST(VectorClockTest, MergeTakesEntrywiseMax) {
  VectorClock a{5, 0, 7};
  VectorClock b{3, 9, 7};
  a.merge(b);
  EXPECT_EQ(a, (VectorClock{5, 9, 7}));
}

TEST(VectorClockTest, MergeIsIdempotent) {
  VectorClock a{1, 4, 2};
  VectorClock b{2, 3, 2};
  a.merge(b);
  VectorClock once = a;
  a.merge(b);
  EXPECT_EQ(a, once);
}

TEST(VectorClockTest, MergeIsCommutativeInEffect) {
  VectorClock a{1, 4, 2};
  VectorClock b{2, 3, 9};
  VectorClock ab = a;
  ab.merge(b);
  VectorClock ba = b;
  ba.merge(a);
  EXPECT_EQ(ab, ba);
}

TEST(VectorClockTest, LeqReflexive) {
  VectorClock a{1, 2, 3};
  EXPECT_TRUE(a.leq(a));
}

TEST(VectorClockTest, LeqDetectsGreaterEntry) {
  VectorClock a{1, 2, 3};
  VectorClock b{1, 2, 2};
  EXPECT_FALSE(a.leq(b));
  EXPECT_TRUE(b.leq(a));
}

TEST(VectorClockTest, IncomparableClocksFailBothDirections) {
  VectorClock a{2, 1};
  VectorClock b{1, 2};
  EXPECT_FALSE(a.leq(b));
  EXPECT_FALSE(b.leq(a));
}

TEST(VectorClockTest, LeqMaskedIgnoresUnmaskedEntries) {
  VectorClock version{9, 1, 9};
  VectorClock snapshot{0, 5, 0};
  std::vector<bool> mask{false, true, false};
  // Entries 0 and 2 exceed the snapshot but are unmasked (unread sites).
  EXPECT_TRUE(version.leq_masked(snapshot, mask));
}

TEST(VectorClockTest, LeqMaskedChecksMaskedEntries) {
  VectorClock version{0, 6, 0};
  VectorClock snapshot{9, 5, 9};
  std::vector<bool> mask{false, true, false};
  EXPECT_FALSE(version.leq_masked(snapshot, mask));
}

TEST(VectorClockTest, LeqMaskedAllFalseAlwaysTrue) {
  VectorClock version{100, 100};
  VectorClock snapshot{0, 0};
  std::vector<bool> mask{false, false};
  // No site read yet -> every version is visible (first-read freshness).
  EXPECT_TRUE(version.leq_masked(snapshot, mask));
}

TEST(VectorClockTest, EqMasked) {
  VectorClock a{1, 2, 3};
  VectorClock b{9, 2, 7};
  EXPECT_TRUE(a.eq_masked(b, {false, true, false}));
  EXPECT_FALSE(a.eq_masked(b, {true, true, false}));
  EXPECT_TRUE(a.eq_masked(b, {false, false, false}));
}

TEST(VectorClockTest, ToString) {
  VectorClock vc{2, 7, 6, 13};
  EXPECT_EQ(vc.to_string(), "<2,7,6,13>");
  EXPECT_EQ(VectorClock{}.to_string(), "<>");
}

TEST(AccessVectorTest, StartsAllFalse) {
  AccessVector av(4);
  EXPECT_FALSE(av.any());
  for (std::size_t i = 0; i < 4; ++i) EXPECT_FALSE(av.get(i));
}

TEST(AccessVectorTest, SetAndAny) {
  AccessVector av(4);
  av.set(2);
  EXPECT_TRUE(av.any());
  EXPECT_TRUE(av.get(2));
  EXPECT_FALSE(av.get(1));
}

TEST(AccessVectorTest, ResetClearsAll) {
  AccessVector av(3);
  av.set(0);
  av.set(2);
  av.reset();
  EXPECT_FALSE(av.any());
}

TEST(AccessVectorTest, ToString) {
  AccessVector av(3);
  av.set(1);
  EXPECT_EQ(av.to_string(), "[010]");
}

// Property sweep: merge upper-bounds both operands; leq agrees with merge.
class VectorClockPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VectorClockPropertyTest, MergeIsLeastUpperBound) {
  const int seed = GetParam();
  std::mt19937_64 rng(seed);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng() % 32;
    VectorClock a(n);
    VectorClock b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng() % 100;
      b[i] = rng() % 100;
    }
    VectorClock m = a;
    m.merge(b);
    EXPECT_TRUE(a.leq(m));
    EXPECT_TRUE(b.leq(m));
    // Least: decreasing any entry of m breaks one of the bounds.
    for (std::size_t i = 0; i < n; ++i) {
      if (m[i] == 0) continue;
      VectorClock lower = m;
      --lower[i];
      EXPECT_FALSE(a.leq(lower) && b.leq(lower));
    }
  }
}

TEST_P(VectorClockPropertyTest, LeqMaskedMonotoneInMask) {
  const int seed = GetParam();
  std::mt19937_64 rng(seed * 977 + 3);
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t n = 1 + rng() % 16;
    VectorClock a(n);
    VectorClock b(n);
    std::vector<bool> mask(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = rng() % 10;
      b[i] = rng() % 10;
      mask[i] = rng() % 2 == 0;
    }
    // Clearing a mask bit can only make leq_masked *more* permissive.
    if (a.leq_masked(b, mask)) {
      for (std::size_t i = 0; i < n; ++i) {
        auto weaker = mask;
        weaker[i] = false;
        EXPECT_TRUE(a.leq_masked(b, weaker));
      }
    }
    // Full mask agrees with plain leq.
    EXPECT_EQ(a.leq_masked(b, std::vector<bool>(n, true)), a.leq(b));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VectorClockPropertyTest,
                         ::testing::Range(1, 6));

}  // namespace
}  // namespace fwkv
