#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/histogram.hpp"

namespace fwkv {
namespace {

TEST(CounterTest, AddAndGet) {
  Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(9);
  EXPECT_EQ(c.get(), 10u);
  c.reset();
  EXPECT_EQ(c.get(), 0u);
}

TEST(CounterTest, ConcurrentAdds) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.get(), 40000u);
}

TEST(AccumulatorTest, TracksSumCountMax) {
  Accumulator a;
  a.record(3);
  a.record(10);
  a.record(7);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 20u);
  EXPECT_EQ(a.max(), 10u);
  EXPECT_DOUBLE_EQ(a.mean(), 20.0 / 3.0);
}

TEST(AccumulatorTest, EmptyMeanIsZero) {
  Accumulator a;
  EXPECT_EQ(a.mean(), 0.0);
}

TEST(AccumulatorTest, ConcurrentMax) {
  Accumulator a;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&a, t] {
      for (int i = 0; i < 5000; ++i) {
        a.record(static_cast<std::uint64_t>(t) * 10000 + i);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(a.count(), 20000u);
  EXPECT_EQ(a.max(), 34999u);
}

TEST(LogHistogramTest, CountAndMean) {
  LogHistogram h;
  h.record(100);
  h.record(200);
  h.record(300);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.mean(), 200.0);
}

TEST(LogHistogramTest, PercentilesAreOrdered) {
  LogHistogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  const auto p50 = h.value_at_percentile(50);
  const auto p90 = h.value_at_percentile(90);
  const auto p99 = h.value_at_percentile(99);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  // Log buckets: representative values are within 2x of the true value.
  EXPECT_GT(p50, 2500u);
  EXPECT_LT(p50, 10000u);
}

TEST(LogHistogramTest, EmptyPercentileIsZero) {
  LogHistogram h;
  EXPECT_EQ(h.value_at_percentile(99), 0u);
  EXPECT_EQ(h.count(), 0u);
}

TEST(LogHistogramTest, ZeroValuesLandInFirstBucket) {
  LogHistogram h;
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.value_at_percentile(50), 0u);
}

TEST(LogHistogramTest, MergeCombines) {
  LogHistogram a;
  LogHistogram b;
  a.record(10);
  b.record(1000);
  a.merge_from(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 505.0);
}

TEST(LogHistogramTest, SummaryMentionsCount) {
  LogHistogram h;
  h.record(5);
  EXPECT_NE(h.summary().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace fwkv
