// Randomized PSI history checking. Writer transactions update *groups* of
// keys atomically, tagging every key in the group with (writer, epoch).
// Reader transactions snapshot whole groups and assert, post-hoc, the
// observable guarantees PSI gives:
//
//   G1. Group atomicity: all keys of a group carry the same epoch in any
//       snapshot (no torn groups = no read skew).
//   G2. Per-reader session monotonicity over a single origin's commits:
//       successive snapshots of the same reader never observe an origin's
//       epoch counter going backwards (commits from one site are applied
//       in seq order everywhere).
//
// The long-fork probe covers the cross-origin ordering anomaly separately;
// here we hammer the per-origin guarantees with many groups, writers and
// interleavings, under normal and delayed propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/session.hpp"

namespace fwkv {
namespace {

using namespace std::chrono_literals;

constexpr std::uint32_t kGroups = 6;
constexpr std::uint32_t kKeysPerGroup = 3;

Key group_key(std::uint32_t group, std::uint32_t idx) {
  return group * 100 + idx;
}

struct HistoryCase {
  Protocol protocol;
  std::chrono::milliseconds propagate_delay;
};

/// Drives the writer/reader swarm against `cluster` for `run_for` and
/// checks G1/G2. `label` names the configuration in failure messages (the
/// chaos variant puts the fault seed here so a violation is reproducible).
/// `min_snapshots`/`min_commits` guard against a silently wedged run.
void run_group_history(Cluster& cluster, std::chrono::milliseconds run_for,
                       std::uint64_t min_snapshots, std::uint64_t min_commits,
                       const std::string& label) {
  for (std::uint32_t g = 0; g < kGroups; ++g) {
    for (std::uint32_t i = 0; i < kKeysPerGroup; ++i) {
      cluster.load(group_key(g, i), "0");
    }
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> regressions{0};
  std::atomic<std::uint64_t> snapshots{0};
  std::atomic<std::uint64_t> commits{0};

  // One writer per node; each writer picks a random group and rewrites all
  // of its keys to the writer's next epoch (read-modify-write so conflicts
  // are detected).
  std::vector<std::thread> threads;
  for (NodeId n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      Session s = cluster.make_session(n, 0);
      Rng rng(n * 7919 + 13);
      std::uint64_t epoch = 1;
      while (!stop.load(std::memory_order_acquire)) {
        const auto g = static_cast<std::uint32_t>(rng.next_below(kGroups));
        auto tx = s.begin();
        bool ok = true;
        for (std::uint32_t i = 0; i < kKeysPerGroup && ok; ++i) {
          ok = s.read(tx, group_key(g, i)).has_value();
        }
        if (!ok) continue;
        const std::string tag =
            std::to_string(n) + ":" + std::to_string(epoch);
        for (std::uint32_t i = 0; i < kKeysPerGroup; ++i) {
          s.write(tx, group_key(g, i), tag);
        }
        if (s.commit(tx)) {
          ++epoch;
          commits.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // Readers: snapshot one group per transaction; check G1 within the
  // snapshot and G2 against the last epoch this reader observed from each
  // (group, writer) pair.
  for (NodeId n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      Session s = cluster.make_session(n, 1);
      Rng rng(n * 104729 + 29);
      // last_seen[group][writer] = highest epoch observed.
      std::vector<std::array<std::uint64_t, 3>> last_seen(
          kGroups, {0, 0, 0});
      while (!stop.load(std::memory_order_acquire)) {
        const auto g = static_cast<std::uint32_t>(rng.next_below(kGroups));
        auto tx = s.begin(true);
        std::vector<std::string> values;
        bool ok = true;
        for (std::uint32_t i = 0; i < kKeysPerGroup && ok; ++i) {
          auto v = s.read(tx, group_key(g, i));
          ok = v.has_value();
          if (ok) values.push_back(*v);
        }
        if (!s.commit(tx) || !ok) continue;
        snapshots.fetch_add(1, std::memory_order_relaxed);
        // G1: all keys of the group carry the same tag.
        for (const auto& v : values) {
          if (v != values[0]) {
            torn.fetch_add(1, std::memory_order_relaxed);
            break;
          }
        }
        // G2: the observed (writer, epoch) never regresses per group.
        if (values[0] != "0") {
          const auto colon = values[0].find(':');
          ASSERT_NE(colon, std::string::npos);
          const auto writer = static_cast<std::size_t>(
              std::strtoul(values[0].substr(0, colon).c_str(), nullptr, 10));
          const std::uint64_t epoch =
              std::strtoull(values[0].substr(colon + 1).c_str(), nullptr, 10);
          ASSERT_LT(writer, 3u);
          auto& seen = last_seen[g][writer];
          // A strictly smaller epoch from the same writer on the same
          // group means the snapshot moved backwards in that writer's
          // commit order. Note: seeing an *older other-writer* tag is
          // legal under PSI (the newer write may not be visible yet), so
          // only same-writer regressions count.
          if (epoch < seen) regressions.fetch_add(1, std::memory_order_relaxed);
          if (epoch > seen) seen = epoch;
        }
      }
    });
  }

  std::this_thread::sleep_for(run_for);
  stop.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  ASSERT_TRUE(cluster.quiesce(10s)) << label;

  ASSERT_GT(snapshots.load(), min_snapshots) << label;
  ASSERT_GT(commits.load(), min_commits) << label;
  EXPECT_EQ(torn.load(), 0u)
      << "read skew: torn group snapshot; " << label;
  EXPECT_EQ(regressions.load(), 0u)
      << "per-origin commit order regressed within a reader session; "
      << label;
}

class PsiHistoryTest : public ::testing::TestWithParam<HistoryCase> {};

TEST_P(PsiHistoryTest, GroupSnapshotsAreAtomicAndMonotone) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = param.protocol;
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  cfg.net.propagate_extra_delay = param.propagate_delay;
  Cluster cluster(cfg);
  run_group_history(cluster, 400ms, /*min_snapshots=*/100,
                    /*min_commits=*/10, protocol_name(param.protocol));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PsiHistoryTest,
    ::testing::Values(HistoryCase{Protocol::kFwKv, 0ms},
                      HistoryCase{Protocol::kFwKv, 3ms},
                      HistoryCase{Protocol::kWalter, 0ms},
                      HistoryCase{Protocol::kWalter, 3ms},
                      HistoryCase{Protocol::kTwoPC, 0ms}),
    [](const auto& info) {
      std::string name = protocol_name(info.param.protocol);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + (info.param.propagate_delay.count() > 0 ? "Delayed" : "");
    });

#ifdef FWKV_CHAOS_SUITE
// Chaos variant: the same G1/G2 guarantees must hold while the network
// drops, duplicates and reorders 5% of every message class and one link
// partitions mid-run. Every assertion carries the seed, so a violation is
// reproducible by constructing the same FaultPlan.
struct ChaosHistoryCase {
  Protocol protocol;
  std::uint64_t seed;
};

class ChaosHistoryTest : public ::testing::TestWithParam<ChaosHistoryCase> {};

TEST_P(ChaosHistoryTest, GroupGuaranteesHoldUnderFaults) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = param.protocol;
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  cfg.net.faults = net::FaultPlan::uniform(param.seed, 0.05, 0.05, 0.05);
  // One link flaps mid-run and heals.
  cfg.net.faults.partitions.push_back(
      net::LinkPartition{0, 1, 50ms, 60ms, /*bidirectional=*/true});
  // Recovery timeouts sized to the 20 us simulated latency so retries and
  // timeout aborts land inside the run window.
  cfg.protocol_config.rpc_timeout = 50ms;
  cfg.protocol_config.prepare_timeout = 30ms;
  cfg.protocol_config.decide_ack_timeout = 10ms;
  cfg.protocol_config.gap_request_delay = 3ms;
  Cluster cluster(cfg);
  run_group_history(
      cluster, 400ms, /*min_snapshots=*/20, /*min_commits=*/5,
      std::string("reproduce: FaultPlan::uniform(") +
          std::to_string(param.seed) + ", 0.05, 0.05, 0.05) + partition(0,1"
          ",50ms,60ms), protocol " + protocol_name(param.protocol));
}

std::vector<ChaosHistoryCase> chaos_history_cases() {
  const std::uint64_t seeds[] = {11, 23, 37, 41, 59, 67, 83, 97};
  std::vector<ChaosHistoryCase> cases;
  for (Protocol p :
       {Protocol::kFwKv, Protocol::kWalter, Protocol::kTwoPC}) {
    for (auto s : seeds) cases.push_back({p, s});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosHistoryTest, ::testing::ValuesIn(chaos_history_cases()),
    [](const auto& info) {
      std::string name = protocol_name(info.param.protocol);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "Seed" + std::to_string(info.param.seed);
    });
#endif  // FWKV_CHAOS_SUITE

}  // namespace
}  // namespace fwkv
