// Driver, metrics and report-table behaviour.
#include <gtest/gtest.h>

#include <sstream>

#include "runtime/driver.hpp"
#include "runtime/report.hpp"
#include "workload/ycsb.hpp"

namespace fwkv::runtime {
namespace {

TEST(ClientStatsTest, MergeSums) {
  ClientStats a;
  a.ro_commits = 2;
  a.update_commits = 3;
  a.aborts_lock = 1;
  a.reads = 10;
  ClientStats b;
  b.ro_commits = 5;
  b.aborts_validation = 4;
  b.stale_reads = 2;
  a.merge(b);
  EXPECT_EQ(a.ro_commits, 7u);
  EXPECT_EQ(a.commits(), 10u);
  EXPECT_EQ(a.aborts(), 5u);
  EXPECT_EQ(a.stale_reads, 2u);
}

TEST(RunResultTest, DerivedMetrics) {
  RunResult r;
  r.seconds = 2.0;
  r.clients.ro_commits = 600;
  r.clients.update_commits = 400;
  r.clients.aborts_validation = 100;
  r.clients.reads = 2000;
  r.clients.stale_reads = 200;
  r.clients.freshness_gap_sum = 400;
  r.clients.latency_ns_sum = 1'000'000;
  r.clients.latency_samples = 1000;

  EXPECT_DOUBLE_EQ(r.throughput_tps(), 500.0);
  EXPECT_DOUBLE_EQ(r.abort_rate(), 100.0 / 500.0);
  EXPECT_DOUBLE_EQ(r.stale_read_fraction(), 0.1);
  EXPECT_DOUBLE_EQ(r.mean_freshness_gap(), 0.2);
  EXPECT_DOUBLE_EQ(r.mean_latency_us(), 1.0);
}

TEST(RunResultTest, EmptyResultIsAllZero) {
  RunResult r;
  EXPECT_EQ(r.throughput_tps(), 0.0);
  EXPECT_EQ(r.abort_rate(), 0.0);
  EXPECT_EQ(r.stale_read_fraction(), 0.0);
  EXPECT_EQ(r.mean_latency_us(), 0.0);
}

TEST(RunResultTest, MergeTrialPoolsAndAverages) {
  RunResult a;
  a.seconds = 1.0;
  a.clients.update_commits = 100;
  RunResult b;
  b.seconds = 1.0;
  b.clients.update_commits = 300;
  a.merge_trial(b);
  EXPECT_DOUBLE_EQ(a.throughput_tps(), 200.0);  // (100+300)/2s
}

TEST(RunResultTest, SummaryMentionsProtocol) {
  RunResult r;
  r.protocol = Protocol::kWalter;
  r.seconds = 1;
  EXPECT_NE(r.summary().find("Walter"), std::string::npos);
}

TEST(RunWithRetriesTest, CountsAbortsAndFinalCommit) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.net.one_way_latency = std::chrono::microseconds(5);
  Cluster cluster(cfg);
  cluster.load(1, "0");

  Session victim = cluster.make_session(0, 0);
  Session winner = cluster.make_session(1, 0);
  ClientStats stats;

  int attempt = 0;
  bool ok = run_with_retries(
      victim, stats, /*read_only=*/false, /*max_retries=*/10,
      [&](Session& s, Transaction& tx) {
        ++attempt;
        auto v = s.read(tx, 1);
        if (!v) return false;
        if (attempt == 1) {
          // Sabotage the first attempt: another client overwrites key 1
          // between our read and our commit.
          auto wtx = winner.begin();
          winner.read(wtx, 1);
          winner.write(wtx, 1, "интервенция");
          EXPECT_TRUE(winner.commit(wtx));
          EXPECT_TRUE(cluster.quiesce());
        }
        s.write(tx, 1, "mine");
        return true;
      });
  EXPECT_TRUE(ok);
  EXPECT_EQ(attempt, 2);
  EXPECT_EQ(stats.update_commits, 1u);
  EXPECT_EQ(stats.aborts(), 1u);
  ASSERT_TRUE(cluster.quiesce());
}

TEST(RunWithRetriesTest, AbandonReturnsFalseWithoutCounting) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.net.one_way_latency = std::chrono::microseconds(5);
  Cluster cluster(cfg);
  Session s = cluster.make_session(0, 0);
  ClientStats stats;
  bool ok = run_with_retries(s, stats, true, 10,
                             [](Session&, Transaction&) { return false; });
  EXPECT_FALSE(ok);
  EXPECT_EQ(stats.commits(), 0u);
  EXPECT_EQ(stats.aborts(), 0u);
}

TEST(DriverTest, MeasuresOnlyTheMeasurementWindow) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.net.one_way_latency = std::chrono::microseconds(10);
  Cluster cluster(cfg);
  ycsb::YcsbConfig ycfg;
  ycfg.total_keys = 200;
  ycfg.read_only_ratio = 0.5;
  ycsb::YcsbWorkload workload(ycfg);
  workload.load(cluster);

  DriverConfig dcfg;
  dcfg.clients_per_node = 2;
  dcfg.warmup = std::chrono::milliseconds(50);
  dcfg.measure = std::chrono::milliseconds(200);
  auto result = run_driver(cluster, workload, dcfg);
  EXPECT_GT(result.clients.commits(), 0u);
  EXPECT_NEAR(result.seconds, 0.2, 0.1);
  // Node-side counters were reset at the window edge: commits seen by the
  // nodes during measurement are close to client-side counts.
  EXPECT_LE(result.nodes.total_commits(),
            result.clients.commits() + result.clients.aborts() + 50);
  ASSERT_TRUE(cluster.quiesce());
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t("demo", {"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "2"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("col"), std::string::npos);
}

TEST(TableTest, ShortRowsArePadded) {
  Table t("x", {"a", "b", "c"});
  t.add_row({"only-one"});
  std::ostringstream os;
  t.print(os);  // must not crash
  EXPECT_NE(os.str().find("only-one"), std::string::npos);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(2.0, 0), "2");
  EXPECT_EQ(Table::fmt_pct(0.256), "25.6%");
}

}  // namespace
}  // namespace fwkv::runtime
