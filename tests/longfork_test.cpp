// Long-fork probe assertions (§2.4, §3.3): FW-KV first-contact reads are
// never stale w.r.t. committed-before-start updates; Walter's are, whenever
// propagation lags.
#include <gtest/gtest.h>

#include "runtime/longfork.hpp"

namespace fwkv::runtime {
namespace {

LongForkProbeConfig probe(Protocol p) {
  LongForkProbeConfig cfg;
  cfg.protocol = p;
  cfg.duration = std::chrono::milliseconds(400);
  cfg.one_way_latency = std::chrono::microseconds(50);
  cfg.propagate_extra_delay = std::chrono::milliseconds(2);
  return cfg;
}

TEST(LongForkTest, FwKvNeverMissesSettledUpdates) {
  auto result = run_long_fork_probe(probe(Protocol::kFwKv));
  ASSERT_GT(result.snapshots, 100u) << "probe produced too little data";
  ASSERT_GT(result.updates_committed, 10u);
  EXPECT_EQ(result.stale_first_reads, 0u)
      << "an FW-KV first-contact read returned a version older than a "
         "commit that completed before the transaction began";
  EXPECT_EQ(result.stale_long_fork_pairs, 0u);
}

TEST(LongForkTest, WalterMissesSettledUpdatesUnderDelay) {
  auto result = run_long_fork_probe(probe(Protocol::kWalter));
  ASSERT_GT(result.snapshots, 100u);
  ASSERT_GT(result.updates_committed, 10u);
  EXPECT_GT(result.stale_first_reads, 0u)
      << "Walter with 2 ms propagate delay should serve stale reads";
}

TEST(LongForkTest, WalterStalenessScalesWithDelay) {
  auto short_delay = probe(Protocol::kWalter);
  short_delay.propagate_extra_delay = std::chrono::microseconds(100);
  auto long_delay = probe(Protocol::kWalter);
  long_delay.propagate_extra_delay = std::chrono::milliseconds(10);

  auto quick = run_long_fork_probe(short_delay);
  auto slow = run_long_fork_probe(long_delay);
  ASSERT_GT(quick.reads, 0u);
  ASSERT_GT(slow.reads, 0u);
  EXPECT_GT(slow.stale_first_read_rate(), quick.stale_first_read_rate())
      << "staleness should grow with the propagation delay";
}

}  // namespace
}  // namespace fwkv::runtime
