#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "store/lock_table.hpp"

namespace fwkv::store {
namespace {

using namespace std::chrono_literals;

const TxId kTx1(1, 0, 1);
const TxId kTx2(2, 0, 1);

TEST(LockTableTest, ExclusiveBasics) {
  LockTable locks;
  EXPECT_TRUE(locks.lock_exclusive(1, kTx1, 1ms));
  EXPECT_TRUE(locks.held_exclusive(1, kTx1));
  EXPECT_FALSE(locks.held_exclusive(1, kTx2));
  locks.unlock_exclusive(1, kTx1);
  EXPECT_FALSE(locks.held_exclusive(1, kTx1));
}

TEST(LockTableTest, ExclusiveExcludesOtherOwners) {
  LockTable locks;
  ASSERT_TRUE(locks.lock_exclusive(1, kTx1, 1ms));
  EXPECT_FALSE(locks.lock_exclusive(1, kTx2, 2ms));
  locks.unlock_exclusive(1, kTx1);
  EXPECT_TRUE(locks.lock_exclusive(1, kTx2, 1ms));
  locks.unlock_exclusive(1, kTx2);
}

TEST(LockTableTest, ExclusiveReacquireByOwnerIsIdempotent) {
  LockTable locks;
  ASSERT_TRUE(locks.lock_exclusive(1, kTx1, 1ms));
  EXPECT_TRUE(locks.lock_exclusive(1, kTx1, 1ms));
  locks.unlock_exclusive(1, kTx1);
}

TEST(LockTableTest, SharedAllowsMultipleReaders) {
  LockTable locks;
  EXPECT_TRUE(locks.lock_shared(1, kTx1, 1ms));
  EXPECT_TRUE(locks.lock_shared(1, kTx2, 1ms));
  locks.unlock_shared(1, kTx1);
  locks.unlock_shared(1, kTx2);
}

TEST(LockTableTest, SharedBlocksExclusive) {
  LockTable locks;
  ASSERT_TRUE(locks.lock_shared(1, kTx1, 1ms));
  EXPECT_FALSE(locks.lock_exclusive(1, kTx2, 2ms));
  locks.unlock_shared(1, kTx1);
  EXPECT_TRUE(locks.lock_exclusive(1, kTx2, 1ms));
  locks.unlock_exclusive(1, kTx2);
}

TEST(LockTableTest, ExclusiveBlocksShared) {
  LockTable locks;
  ASSERT_TRUE(locks.lock_exclusive(1, kTx1, 1ms));
  EXPECT_FALSE(locks.lock_shared(1, kTx2, 2ms));
  locks.unlock_exclusive(1, kTx1);
  EXPECT_TRUE(locks.lock_shared(1, kTx2, 1ms));
  locks.unlock_shared(1, kTx2);
}

TEST(LockTableTest, DifferentKeysAreIndependent) {
  LockTable locks;
  ASSERT_TRUE(locks.lock_exclusive(1, kTx1, 1ms));
  EXPECT_TRUE(locks.lock_exclusive(2, kTx2, 1ms));
  locks.unlock_exclusive(1, kTx1);
  locks.unlock_exclusive(2, kTx2);
}

TEST(LockTableTest, TimedWaitSucceedsWhenReleased) {
  LockTable locks;
  ASSERT_TRUE(locks.lock_exclusive(1, kTx1, 1ms));
  std::thread releaser([&] {
    std::this_thread::sleep_for(10ms);
    locks.unlock_exclusive(1, kTx1);
  });
  EXPECT_TRUE(locks.lock_exclusive(1, kTx2, 500ms));
  releaser.join();
  locks.unlock_exclusive(1, kTx2);
}

TEST(LockTableTest, MultiKeyAllOrNothing) {
  LockTable locks;
  ASSERT_TRUE(locks.lock_exclusive(2, kTx1, 1ms));

  std::vector<Key> keys{1, 2, 3};
  EXPECT_FALSE(locks.lock_all_exclusive(keys, kTx2, 2ms));
  // Keys 1 and 3 must have been rolled back.
  EXPECT_TRUE(locks.lock_exclusive(1, kTx1, 1ms));
  EXPECT_TRUE(locks.lock_exclusive(3, kTx1, 1ms));
  locks.unlock_all_exclusive(std::vector<Key>{1, 2, 3}, kTx1);

  EXPECT_TRUE(locks.lock_all_exclusive(keys, kTx2, 2ms));
  locks.unlock_all_exclusive(keys, kTx2);
}

TEST(LockTableTest, StressMutualExclusion) {
  LockTable locks;
  std::atomic<int> in_critical{0};
  std::atomic<int> acquired{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const TxId me(static_cast<NodeId>(t), 0, 1);
      for (int i = 0; i < 200; ++i) {
        if (!locks.lock_exclusive(7, me, 50ms)) continue;
        if (in_critical.fetch_add(1) != 0) violation = true;
        in_critical.fetch_sub(1);
        acquired.fetch_add(1);
        locks.unlock_exclusive(7, me);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
  EXPECT_GT(acquired.load(), 800);
}

TEST(LockTableTest, StressSharedExclusiveInvariant) {
  LockTable locks;
  std::atomic<int> readers{0};
  std::atomic<int> writers{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    const bool writer = t < 2;
    threads.emplace_back([&, t, writer] {
      const TxId me(static_cast<NodeId>(t), 0, 1);
      for (int i = 0; i < 150; ++i) {
        if (writer) {
          if (!locks.lock_exclusive(9, me, 50ms)) continue;
          if (writers.fetch_add(1) != 0 || readers.load() != 0) {
            violation = true;
          }
          writers.fetch_sub(1);
          locks.unlock_exclusive(9, me);
        } else {
          if (!locks.lock_shared(9, me, 50ms)) continue;
          readers.fetch_add(1);
          if (writers.load() != 0) violation = true;
          readers.fetch_sub(1);
          locks.unlock_shared(9, me);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(violation.load());
}

}  // namespace
}  // namespace fwkv::store
