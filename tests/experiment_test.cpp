// Experiment harness + geo/jitter network features.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "runtime/experiment.hpp"

namespace fwkv {
namespace {

using namespace std::chrono_literals;

TEST(TwoRegionMatrixTest, IntraAndInterRegionLatencies) {
  auto m = net::SimNetwork::two_region_matrix(6, 3, 100us, 5ms);
  ASSERT_EQ(m.size(), 6u);
  EXPECT_EQ(m[0][1], 100us);  // west-west
  EXPECT_EQ(m[4][5], 100us);  // east-east
  EXPECT_EQ(m[0][3], 5ms);    // west-east
  EXPECT_EQ(m[5][2], 5ms);    // east-west
  EXPECT_EQ(m[2][2], 100us);  // self entry (unused: loopback is free)
}

TEST(ExperimentScaleTest, EnvOverrides) {
  setenv("FWKV_BENCH_MS", "123", 1);
  setenv("FWKV_BENCH_CLIENTS", "2", 1);
  setenv("FWKV_BENCH_LAT_US", "50", 1);
  setenv("FWKV_BENCH_TRIALS", "7", 1);
  auto scale = runtime::ExperimentScale::from_env();
  EXPECT_EQ(scale.measure, std::chrono::milliseconds(123));
  EXPECT_EQ(scale.clients_per_node, 2u);
  EXPECT_EQ(scale.one_way_latency, std::chrono::microseconds(50));
  EXPECT_EQ(scale.trials, 7u);
  unsetenv("FWKV_BENCH_MS");
  unsetenv("FWKV_BENCH_CLIENTS");
  unsetenv("FWKV_BENCH_LAT_US");
  unsetenv("FWKV_BENCH_TRIALS");
}

TEST(ExperimentScaleTest, DefaultsWithoutEnv) {
  unsetenv("FWKV_BENCH_MS");
  unsetenv("FWKV_BENCH_TRIALS");
  auto scale = runtime::ExperimentScale::from_env();
  EXPECT_GT(scale.measure.count(), 0);
  EXPECT_GE(scale.trials, 1u);
}

runtime::ExperimentScale tiny_scale() {
  runtime::ExperimentScale scale;
  scale.measure = std::chrono::milliseconds(120);
  scale.warmup = std::chrono::milliseconds(30);
  scale.clients_per_node = 2;
  scale.one_way_latency = std::chrono::microseconds(20);
  scale.trials = 2;
  return scale;
}

TEST(ExperimentTest, YcsbPointProducesCommits) {
  runtime::YcsbPoint point;
  point.num_nodes = 3;
  point.total_keys = 2000;
  auto result = runtime::run_ycsb_point(point, tiny_scale());
  EXPECT_GT(result.clients.commits(), 0u);
  EXPECT_GT(result.throughput_tps(), 0.0);
  // Two pooled trials: measured seconds is roughly twice the window.
  EXPECT_NEAR(result.seconds, 0.24, 0.15);
}

TEST(ExperimentTest, TpccPointProducesCommits) {
  runtime::TpccPoint point;
  point.num_nodes = 2;
  point.warehouses_per_node = 1;
  point.customers_per_district = 10;
  point.items = 100;
  auto result = runtime::run_tpcc_point(point, tiny_scale());
  EXPECT_GT(result.clients.commits(), 0u);
}

TEST(ExperimentTest, MatrixInterleavesAllPoints) {
  std::vector<runtime::YcsbPoint> points(3);
  points[0].protocol = Protocol::kFwKv;
  points[1].protocol = Protocol::kWalter;
  points[2].protocol = Protocol::kTwoPC;
  for (auto& p : points) {
    p.num_nodes = 2;
    p.total_keys = 1000;
  }
  auto results = runtime::run_ycsb_matrix(points, tiny_scale());
  ASSERT_EQ(results.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(results[i].protocol, points[i].protocol);
    EXPECT_GT(results[i].clients.commits(), 0u) << protocol_name(points[i].protocol);
  }
}

TEST(GeoClusterTest, TwoRegionClusterWorks) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.protocol = Protocol::kFwKv;
  cfg.net.one_way_latency = 20us;
  cfg.net.link_latency =
      net::SimNetwork::two_region_matrix(4, 2, 20us, 2ms);
  cfg.net.jitter = 10us;
  Cluster cluster(cfg);
  for (Key k = 0; k < 40; ++k) cluster.load(k, "v");

  Session s = cluster.make_session(0, 0);
  auto tx = s.begin();
  int reads = 0;
  for (Key k = 0; k < 40 && reads < 4; ++k) {
    if (cluster.node_for_key(k) >= 2) {  // a key in the far region
      ASSERT_TRUE(s.read(tx, k).has_value());
      s.write(tx, k, "updated");
      ++reads;
    }
  }
  ASSERT_GT(reads, 0);
  EXPECT_TRUE(s.commit(tx));
  ASSERT_TRUE(cluster.quiesce(20s));
}

TEST(GeoClusterTest, WanLatencyIsObservable) {
  ClusterConfig cfg;
  cfg.num_nodes = 2;
  cfg.protocol = Protocol::kFwKv;
  cfg.net.link_latency =
      net::SimNetwork::two_region_matrix(2, 1, 10us, 20ms);
  Cluster cluster(cfg);
  Key far = 0;
  while (cluster.node_for_key(far) != 1) ++far;
  cluster.load(far, "v");

  Session s = cluster.make_session(0, 0);
  auto tx = s.begin(true);
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(s.read(tx, far).has_value());
  const auto rtt = std::chrono::steady_clock::now() - t0;
  s.commit(tx);
  EXPECT_GE(rtt, 38ms) << "WAN round trip came back too fast";
}

}  // namespace
}  // namespace fwkv
