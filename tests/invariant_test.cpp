// System-wide property tests: safety invariants under concurrent load and
// failure-ish conditions (delayed propagation).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/mv_node.hpp"
#include "core/session.hpp"

namespace fwkv {
namespace {

using namespace std::chrono_literals;

std::int64_t parse(const Value& v) {
  return std::strtoll(v.c_str(), nullptr, 10);
}

struct InvariantCase {
  Protocol protocol;
  std::chrono::milliseconds propagate_delay;
};

/// Random transfers between accounts for `run_for`, then a full audit:
/// total balance must be exactly conserved. `label` names the
/// configuration in failure output (the chaos variant embeds its fault
/// seed so a violation is reproducible).
void run_money_conservation(Cluster& cluster,
                            std::chrono::milliseconds run_for,
                            const std::string& label) {
  constexpr Key kAccounts = 24;
  constexpr std::int64_t kInitial = 100;
  for (Key a = 0; a < kAccounts; ++a) {
    cluster.load(a, std::to_string(kInitial));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> commits{0};
  std::vector<std::thread> threads;
  for (std::uint32_t n = 0; n < cluster.num_nodes(); ++n) {
    threads.emplace_back([&, n] {
      Session s = cluster.make_session(n, 0);
      Rng rng(n * 101 + 7);
      while (!stop.load(std::memory_order_acquire)) {
        Key from = rng.next_below(kAccounts);
        Key to = rng.next_below(kAccounts);
        if (from == to) continue;
        auto tx = s.begin();
        auto fb = s.read(tx, from);
        auto tb = s.read(tx, to);
        if (!fb || !tb) continue;
        const std::int64_t amount = 1 + static_cast<std::int64_t>(rng.next_below(5));
        s.write(tx, from, std::to_string(parse(*fb) - amount));
        s.write(tx, to, std::to_string(parse(*tb) + amount));
        if (s.commit(tx)) commits.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(run_for);
  stop = true;
  for (auto& t : threads) t.join();
  ASSERT_TRUE(cluster.quiesce(10s)) << label;
  ASSERT_GT(commits.load(), 0u) << label;

  Session auditor = cluster.make_session(0, 50);
  auto audit = auditor.begin(true);
  std::int64_t total = 0;
  for (Key a = 0; a < kAccounts; ++a) {
    // Under fault injection a read can exhaust its retries; keep asking —
    // the audit must observe every account.
    std::optional<Value> v;
    for (int attempt = 0; attempt < 20 && !v; ++attempt) {
      v = auditor.read(audit, a);
    }
    ASSERT_TRUE(v.has_value()) << "audit read of account " << a
                               << " kept failing; " << label;
    total += parse(*v);
  }
  auditor.commit(audit);
  EXPECT_EQ(total, kInitial * kAccounts)
      << "conservation violated after " << commits.load() << " transfers; "
      << label;
}

class MoneyConservationTest
    : public ::testing::TestWithParam<InvariantCase> {};

TEST_P(MoneyConservationTest, TotalBalanceIsInvariant) {
  // Transfers read-modify-write both accounts: every protocol must detect
  // write-write conflicts, so no money is created or destroyed — even when
  // propagation lags (the Fig. 7 failure condition).
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = param.protocol;
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  cfg.net.propagate_extra_delay = param.propagate_delay;
  Cluster cluster(cfg);
  run_money_conservation(cluster, 300ms, protocol_name(param.protocol));
}

INSTANTIATE_TEST_SUITE_P(
    Cases, MoneyConservationTest,
    ::testing::Values(InvariantCase{Protocol::kFwKv, 0ms},
                      InvariantCase{Protocol::kFwKv, 2ms},
                      InvariantCase{Protocol::kWalter, 0ms},
                      InvariantCase{Protocol::kWalter, 2ms},
                      InvariantCase{Protocol::kTwoPC, 0ms}),
    [](const auto& info) {
      std::string name = protocol_name(info.param.protocol);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + (info.param.propagate_delay.count() > 0 ? "Delayed" : "");
    });

#ifdef FWKV_CHAOS_SUITE
// Chaos variant: conservation must survive 5% drop/duplicate/reorder on
// every message class plus a healing partition. Exercises timeout aborts,
// prepare/decide retries and gap repair end to end; the audit then proves
// none of that machinery double-applied or lost a committed transfer.
struct ChaosInvariantCase {
  Protocol protocol;
  std::uint64_t seed;
};

class ChaosMoneyConservationTest
    : public ::testing::TestWithParam<ChaosInvariantCase> {};

TEST_P(ChaosMoneyConservationTest, TotalBalanceIsInvariantUnderFaults) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = param.protocol;
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  cfg.net.faults = net::FaultPlan::uniform(param.seed, 0.05, 0.05, 0.05);
  cfg.net.faults.partitions.push_back(
      net::LinkPartition{1, 2, 40ms, 50ms, /*bidirectional=*/true});
  cfg.protocol_config.rpc_timeout = 50ms;
  cfg.protocol_config.prepare_timeout = 30ms;
  cfg.protocol_config.decide_ack_timeout = 10ms;
  cfg.protocol_config.gap_request_delay = 3ms;
  Cluster cluster(cfg);
  run_money_conservation(
      cluster, 300ms,
      std::string("reproduce: FaultPlan::uniform(") +
          std::to_string(param.seed) + ", 0.05, 0.05, 0.05) + partition(1,2"
          ",40ms,50ms), protocol " + protocol_name(param.protocol));
}

std::vector<ChaosInvariantCase> chaos_invariant_cases() {
  const std::uint64_t seeds[] = {11, 23, 37, 41, 59, 67, 83, 97};
  std::vector<ChaosInvariantCase> cases;
  for (Protocol p :
       {Protocol::kFwKv, Protocol::kWalter, Protocol::kTwoPC}) {
    for (auto s : seeds) cases.push_back({p, s});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ChaosMoneyConservationTest,
    ::testing::ValuesIn(chaos_invariant_cases()), [](const auto& info) {
      std::string name = protocol_name(info.param.protocol);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name + "Seed" + std::to_string(info.param.seed);
    });
#endif  // FWKV_CHAOS_SUITE

class SnapshotAtomicityTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(SnapshotAtomicityTest, PairsWrittenTogetherAreReadTogether) {
  // Writers always update (x, y) to the same counter in one transaction;
  // both keys live on the same node. Any reader — under any of the three
  // protocols — must observe x == y: a torn pair means the snapshot broke.
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = GetParam();
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  Cluster cluster(cfg);

  Key x = 0;
  while (cluster.node_for_key(x) != 1) ++x;
  Key y = x + 1;
  while (cluster.node_for_key(y) != 1) ++y;
  cluster.load(x, "0");
  cluster.load(y, "0");

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::atomic<std::uint64_t> reads{0};

  std::thread writer([&] {
    Session s = cluster.make_session(1, 0);
    std::int64_t counter = 1;
    while (!stop.load(std::memory_order_acquire)) {
      auto tx = s.begin();
      auto xv = s.read(tx, x);
      auto yv = s.read(tx, y);
      if (!xv || !yv) continue;
      s.write(tx, x, std::to_string(counter));
      s.write(tx, y, std::to_string(counter));
      if (s.commit(tx)) ++counter;
    }
  });
  std::vector<std::thread> readers;
  for (NodeId n = 0; n < 3; ++n) {
    readers.emplace_back([&, n] {
      Session s = cluster.make_session(n, 1);
      while (!stop.load(std::memory_order_acquire)) {
        auto tx = s.begin(true);
        auto xv = s.read(tx, x);
        auto yv = s.read(tx, y);
        if (!s.commit(tx)) continue;  // 2PC validation may abort
        if (xv && yv) {
          reads.fetch_add(1);
          if (*xv != *yv) torn.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(300ms);
  stop = true;
  writer.join();
  for (auto& t : readers) t.join();
  ASSERT_TRUE(cluster.quiesce(10s));
  ASSERT_GT(reads.load(), 0u);
  EXPECT_EQ(torn.load(), 0u) << "read skew: snapshot returned a torn pair";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SnapshotAtomicityTest,
                         ::testing::Values(Protocol::kFwKv, Protocol::kWalter,
                                           Protocol::kTwoPC),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kFwKv:
                               return "FwKv";
                             case Protocol::kWalter:
                               return "Walter";
                             default:
                               return "TwoPC";
                           }
                         });

TEST(MonotonicSiteVcTest, SiteVcNeverRegresses) {
  Cluster cluster([] {
    ClusterConfig cfg;
    cfg.num_nodes = 3;
    cfg.protocol = Protocol::kFwKv;
    cfg.net.one_way_latency = std::chrono::microseconds(20);
    return cfg;
  }());
  for (Key k = 0; k < 30; ++k) cluster.load(k, "v");

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    Session s = cluster.make_session(0, 0);
    int i = 0;
    while (!stop) {
      auto tx = s.begin();
      s.write(tx, static_cast<Key>(i++ % 30), "w");
      s.commit(tx);
    }
  });

  auto& node1 = dynamic_cast<MvNodeBase&>(cluster.node(1));
  VectorClock last = node1.site_vc();
  bool regressed = false;
  for (int probe = 0; probe < 200; ++probe) {
    VectorClock now = node1.site_vc();
    if (!last.leq(now)) regressed = true;
    last = now;
    std::this_thread::sleep_for(1ms);
  }
  stop = true;
  writer.join();
  EXPECT_FALSE(regressed);
  ASSERT_TRUE(cluster.quiesce());
}

TEST(SerializableYcsbEquivalenceTest, ReadModifyWriteCountersAreExact) {
  // §5: "since update transactions in YCSB write the same keys they read,
  // the final execution is equivalent to ... Serializability". Counters
  // incremented by read-modify-write transactions must equal the number of
  // committed increments exactly.
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = Protocol::kFwKv;
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  Cluster cluster(cfg);
  constexpr Key kKeys = 8;
  for (Key k = 0; k < kKeys; ++k) cluster.load(k, "0");

  std::atomic<std::uint64_t> committed_increments{0};
  std::vector<std::thread> threads;
  for (NodeId n = 0; n < 3; ++n) {
    threads.emplace_back([&, n] {
      Session s = cluster.make_session(n, 0);
      Rng rng(n + 1);
      for (int i = 0; i < 300; ++i) {
        Key k = rng.next_below(kKeys);
        auto tx = s.begin();
        auto v = s.read(tx, k);
        if (!v) continue;
        s.write(tx, k, std::to_string(parse(*v) + 1));
        if (s.commit(tx)) committed_increments.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_TRUE(cluster.quiesce(10s));

  Session auditor = cluster.make_session(0, 9);
  auto audit = auditor.begin(true);
  std::int64_t total = 0;
  for (Key k = 0; k < kKeys; ++k) {
    total += parse(auditor.read(audit, k).value());
  }
  auditor.commit(audit);
  EXPECT_EQ(static_cast<std::uint64_t>(total), committed_increments.load());
}

}  // namespace
}  // namespace fwkv
