// Scripted reproductions of the paper's protocol figures (Figs. 1-4) at
// cluster level, with delayed propagation to force the interleavings.
#include <gtest/gtest.h>

#include <thread>

#include "core/cluster.hpp"
#include "core/mv_node.hpp"
#include "core/session.hpp"

namespace fwkv {
namespace {

using namespace std::chrono_literals;

/// A 4-node cluster whose Propagate messages are delayed long enough that
/// the test fully controls when remote nodes learn about commits.
ClusterConfig delayed_cluster(Protocol p) {
  ClusterConfig cfg;
  cfg.num_nodes = 4;
  cfg.protocol = p;
  cfg.net.one_way_latency = std::chrono::microseconds(50);
  cfg.net.propagate_extra_delay = std::chrono::seconds(2);
  cfg.net.serialize_messages = true;
  return cfg;
}

/// First key whose preferred node is `node`.
Key key_on(const Cluster& cluster, NodeId node, Key start = 0) {
  Key k = start;
  while (cluster.node_for_key(k) != node) ++k;
  return k;
}

// --- Figure 4: FW-KV commits an update that Walter must abort -----------

class Figure4Test : public ::testing::Test {
 protected:
  /// x lives on node 1; a local client updates it; then a client on node 0
  /// (whose siteVC has NOT received the propagate) reads x and writes it.
  /// FW-KV reads the latest x1 and passes validation; Walter reads the
  /// stale x0 and fails validation.
  bool remote_update_commits(Protocol protocol) {
    Cluster cluster(delayed_cluster(protocol));
    const Key x = key_on(cluster, 1);
    cluster.load(x, "x0");

    Session local = cluster.make_session(1, 0);
    Transaction t_local = local.begin();
    local.write(t_local, x, "x1");
    EXPECT_TRUE(local.commit(t_local));
    std::this_thread::sleep_for(20ms);  // decide applies at node 1

    Session remote = cluster.make_session(0, 0);
    Transaction t1 = remote.begin();
    auto read = remote.read(t1, x);
    EXPECT_TRUE(read.has_value());
    if (protocol == Protocol::kFwKv) {
      EXPECT_EQ(*read, "x1") << "FW-KV first read must see the latest";
    } else {
      EXPECT_EQ(*read, "x0") << "Walter's begin snapshot cannot see x1";
    }
    remote.write(t1, x, "x2");
    return remote.commit(t1);
  }
};

TEST_F(Figure4Test, FwKvCommitsOnFreshFirstRead) {
  EXPECT_TRUE(remote_update_commits(Protocol::kFwKv));
}

TEST_F(Figure4Test, WalterAbortsOnStaleSnapshot) {
  EXPECT_FALSE(remote_update_commits(Protocol::kWalter));
}

// --- Figure 2: a read-only transaction advances its snapshot safely -----

TEST(Figure2Test, ReadOnlySkipsAntiDependentVersion) {
  // T1 (RO, node 0) reads x on node 1; then T3 — coordinated from node 2,
  // as in Fig. 2 — overwrites x and y in one transaction. y1's commit
  // clock does not constrain T1's mask (T3's origin is a site T1 never
  // read from), so ONLY the version-access-set exclusion can force T1's
  // later read of y to return y0.
  Cluster cluster(delayed_cluster(Protocol::kFwKv));
  const Key x = key_on(cluster, 1);
  const Key y = key_on(cluster, 1, x + 1);
  cluster.load(x, "x0");
  cluster.load(y, "y0");

  Session t1_session = cluster.make_session(0, 0);
  Transaction t1 = t1_session.begin(/*read_only=*/true);
  EXPECT_EQ(t1_session.read(t1, x), "x0");

  Session t3_session = cluster.make_session(2, 0);
  Transaction t3 = t3_session.begin();
  t3_session.write(t3, x, "x1");
  t3_session.write(t3, y, "y1");
  ASSERT_TRUE(t3_session.commit(t3));
  std::this_thread::sleep_for(20ms);

  // y1 is the latest version on a node T1 has already read from -- but T1's
  // id sits in y1's access set (transitively via T3's collectedSet), so the
  // anti-dependency forces y0.
  EXPECT_EQ(t1_session.read(t1, y), "y0");
  EXPECT_TRUE(t1_session.commit(t1));

  // A fresh read-only transaction sees the new versions.
  Transaction t4 = t1_session.begin(true);
  EXPECT_EQ(t1_session.read(t4, x), "x1");
  EXPECT_EQ(t1_session.read(t4, y), "y1");
  t1_session.commit(t4);
}

TEST(Figure2Test, RemoveCleansAccessSetsAfterCommit) {
  Cluster cluster(delayed_cluster(Protocol::kFwKv));
  const Key x = key_on(cluster, 1);
  cluster.load(x, "x0");

  Session session = cluster.make_session(0, 0);
  Transaction ro = session.begin(true);
  EXPECT_EQ(session.read(ro, x), "x0");
  EXPECT_TRUE(session.commit(ro));
  ASSERT_TRUE(cluster.quiesce());

  auto& node1 = dynamic_cast<MvNodeBase&>(cluster.node(1));
  EXPECT_EQ(node1.mv_store().access_set_footprint(), 0u)
      << "Remove did not clean the read-only transaction's traces";
}

// --- Figure 3: update transactions fix a safe snapshot ------------------

TEST(Figure3Test, UpdateSecondReadUsesSafeSnapshot) {
  // Same interleaving as Figure 2 but T1 is an update transaction: after
  // its first read fixed the snapshot at node 1, the conservative rule
  // must exclude y1 (equal on the read site, ahead on T3's origin).
  Cluster cluster(delayed_cluster(Protocol::kFwKv));
  const Key x = key_on(cluster, 1);
  const Key y = key_on(cluster, 1, x + 1);
  const Key z = key_on(cluster, 0);
  cluster.load(x, "x0");
  cluster.load(y, "y0");
  cluster.load(z, "z0");

  Session t1_session = cluster.make_session(0, 0);
  Transaction t1 = t1_session.begin();
  EXPECT_EQ(t1_session.read(t1, x), "x0");

  Session t3_session = cluster.make_session(2, 0);
  Transaction t3 = t3_session.begin();
  t3_session.write(t3, x, "x1");
  t3_session.write(t3, y, "y1");
  ASSERT_TRUE(t3_session.commit(t3));
  std::this_thread::sleep_for(20ms);

  EXPECT_EQ(t1_session.read(t1, y), "y0")
      << "update transaction read past its safe snapshot";
  t1_session.write(t1, z, "z1");
  EXPECT_TRUE(t1_session.commit(t1));
}

// --- Figure 1: client-visible long fork ---------------------------------

TEST(Figure1Test, FwKvReadsBothSettledUpdates) {
  // T2 on node 1 writes x; T3 on node 2 writes y; both commits complete
  // before the read-only transactions begin, but the Propagates are still
  // in flight (2 s delay). FW-KV readers on nodes 0 and 3 must see BOTH
  // updates (fresh first contact per node) — the Fig. 1 divergence cannot
  // happen. Walter readers see neither (their begin snapshots are stale).
  for (Protocol protocol : {Protocol::kFwKv, Protocol::kWalter}) {
    Cluster cluster(delayed_cluster(protocol));
    const Key x = key_on(cluster, 1);
    const Key y = key_on(cluster, 2);
    cluster.load(x, "x0");
    cluster.load(y, "y0");

    Session t2 = cluster.make_session(1, 0);
    Transaction tx2 = t2.begin();
    t2.write(tx2, x, "x1");
    ASSERT_TRUE(t2.commit(tx2));
    Session t3 = cluster.make_session(2, 0);
    Transaction tx3 = t3.begin();
    t3.write(tx3, y, "y1");
    ASSERT_TRUE(t3.commit(tx3));
    std::this_thread::sleep_for(20ms);

    Session t1 = cluster.make_session(0, 0);
    Transaction ro1 = t1.begin(true);
    auto x_seen_1 = t1.read(ro1, x).value();
    auto y_seen_1 = t1.read(ro1, y).value();
    t1.commit(ro1);

    Session t4 = cluster.make_session(3, 0);
    Transaction ro4 = t4.begin(true);
    auto y_seen_4 = t4.read(ro4, y).value();
    auto x_seen_4 = t4.read(ro4, x).value();
    t4.commit(ro4);

    if (protocol == Protocol::kFwKv) {
      EXPECT_EQ(x_seen_1, "x1");
      EXPECT_EQ(y_seen_1, "y1");
      EXPECT_EQ(x_seen_4, "x1");
      EXPECT_EQ(y_seen_4, "y1");
    } else {
      // Walter: both readers are stuck at their begin snapshots.
      EXPECT_EQ(x_seen_1, "x0");
      EXPECT_EQ(y_seen_1, "y0");
    }
  }
}

}  // namespace
}  // namespace fwkv
