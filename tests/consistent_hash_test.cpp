#include <gtest/gtest.h>

#include "common/consistent_hash.hpp"

namespace fwkv {
namespace {

TEST(ConsistentHashTest, Deterministic) {
  ConsistentHashRing a(10);
  ConsistentHashRing b(10);
  for (Key k = 0; k < 1000; ++k) {
    EXPECT_EQ(a.node_for(k), b.node_for(k));
  }
}

TEST(ConsistentHashTest, InRange) {
  for (std::uint32_t n : {1u, 2u, 5u, 20u}) {
    ConsistentHashRing ring(n);
    for (Key k = 0; k < 500; ++k) {
      EXPECT_LT(ring.node_for(k), n);
    }
  }
}

TEST(ConsistentHashTest, SingleNodeOwnsEverything) {
  ConsistentHashRing ring(1);
  for (Key k = 0; k < 100; ++k) EXPECT_EQ(ring.node_for(k), 0u);
}

TEST(ConsistentHashTest, AllNodesOwnSomething) {
  ConsistentHashRing ring(20);
  std::vector<bool> hit(20, false);
  for (Key k = 0; k < 100000; ++k) hit[ring.node_for(k)] = true;
  for (std::uint32_t n = 0; n < 20; ++n) {
    EXPECT_TRUE(hit[n]) << "node " << n << " owns no keys";
  }
}

TEST(ConsistentHashTest, ReasonableBalance) {
  // §5: "keys are evenly distributed across nodes". With 128 vnodes the
  // per-node share should be within ~2x of ideal.
  ConsistentHashRing ring(10);
  auto shares = ring.sample_ownership(1 << 18);
  for (double s : shares) {
    EXPECT_GT(s, 0.05);
    EXPECT_LT(s, 0.20);
  }
}

TEST(ConsistentHashTest, MoreVnodesBalanceBetter) {
  ConsistentHashRing coarse(8, 8);
  ConsistentHashRing fine(8, 512);
  auto spread = [](const std::vector<double>& shares) {
    double lo = 1.0;
    double hi = 0.0;
    for (double s : shares) {
      lo = std::min(lo, s);
      hi = std::max(hi, s);
    }
    return hi - lo;
  };
  EXPECT_LT(spread(fine.sample_ownership(1 << 17)),
            spread(coarse.sample_ownership(1 << 17)));
}

TEST(ConsistentHashTest, GrowingClusterMovesFewKeys) {
  // The defining consistent-hashing property: adding one node relocates
  // roughly 1/(n+1) of the keys, not all of them.
  ConsistentHashRing before(10);
  ConsistentHashRing after(11);
  std::size_t moved = 0;
  const std::size_t total = 100000;
  for (Key k = 0; k < total; ++k) {
    if (before.node_for(k) != after.node_for(k)) ++moved;
  }
  const double fraction = static_cast<double>(moved) / total;
  EXPECT_LT(fraction, 0.25) << "too many keys moved";
  EXPECT_GT(fraction, 0.02) << "suspiciously few keys moved";
}

TEST(HashKeyTest, MixesStructuredKeys) {
  // Sequential keys must not map to sequential hashes (the ring relies on
  // dispersion).
  std::size_t close = 0;
  for (Key k = 0; k < 1000; ++k) {
    const auto a = hash_key(k);
    const auto b = hash_key(k + 1);
    if ((a > b ? a - b : b - a) < (1ull << 32)) ++close;
  }
  EXPECT_LT(close, 20u);
}

TEST(HashKeyTest, Deterministic) {
  EXPECT_EQ(hash_key(12345), hash_key(12345));
  EXPECT_NE(hash_key(12345), hash_key(12346));
}

}  // namespace
}  // namespace fwkv
