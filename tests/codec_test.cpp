// Wire-codec tests: exact round-trips for every message type plus
// malformed-input rejection. The SimNetwork round-trips every message
// through this codec when serialize_messages is on (the default in these
// tests' clusters), so codec bugs would corrupt protocol state silently —
// hence the exhaustive field checks here.
#include <gtest/gtest.h>

#include <random>

#include "net/codec.hpp"

namespace fwkv::net {
namespace {

VectorClock vc(std::initializer_list<SeqNo> init) { return VectorClock(init); }

TEST(EncoderTest, PrimitivesRoundTrip) {
  Encoder e;
  e.put_u8(0xAB);
  e.put_u32(0xDEADBEEF);
  e.put_u64(0x0123456789ABCDEFull);
  e.put_bool(true);
  e.put_string("hello");
  auto bytes = e.take();
  Decoder d(bytes);
  EXPECT_EQ(d.get_u8(), 0xAB);
  EXPECT_EQ(d.get_u32(), 0xDEADBEEFu);
  EXPECT_EQ(d.get_u64(), 0x0123456789ABCDEFull);
  EXPECT_TRUE(d.get_bool());
  EXPECT_EQ(d.get_string(), "hello");
  EXPECT_TRUE(d.ok());
  EXPECT_TRUE(d.exhausted());
}

TEST(DecoderTest, UnderrunMarksFailed) {
  std::vector<std::uint8_t> two{1, 2};
  Decoder d(two);
  EXPECT_EQ(d.get_u64(), 0u);
  EXPECT_FALSE(d.ok());
}

TEST(DecoderTest, FailureIsSticky) {
  std::vector<std::uint8_t> bytes{1};
  Decoder d(bytes);
  d.get_u32();  // fails
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.get_u8(), 0u);  // still failed even though a byte exists
}

TEST(DecoderTest, StringLengthBeyondBufferFails) {
  Encoder e;
  e.put_u32(100);  // claims 100 bytes follow
  auto bytes = e.take();
  Decoder d(bytes);
  EXPECT_EQ(d.get_string(), "");
  EXPECT_FALSE(d.ok());
}

TEST(CodecTest, ReadRequestRoundTrip) {
  ReadRequest m;
  m.rpc_id = 42;
  m.reply_to = 3;
  m.tx.id = TxId(1, 2, 3);
  m.tx.read_only = true;
  m.tx.vc = vc({2, 7, 6, 13});
  m.tx.has_read = AccessVector(4);
  m.tx.has_read.set(1);
  m.key = 0xFEEDFACE;

  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<ReadRequest>(*decoded);
  EXPECT_EQ(r.rpc_id, 42u);
  EXPECT_EQ(r.reply_to, 3u);
  EXPECT_EQ(r.tx.id, m.tx.id);
  EXPECT_TRUE(r.tx.read_only);
  EXPECT_EQ(r.tx.vc, m.tx.vc);
  EXPECT_TRUE(r.tx.has_read.get(1));
  EXPECT_FALSE(r.tx.has_read.get(0));
  EXPECT_EQ(r.key, 0xFEEDFACEu);
}

TEST(CodecTest, ReadReturnRoundTrip) {
  ReadReturn m;
  m.rpc_id = 7;
  m.found = true;
  m.value = std::string("binary\0data", 11);
  m.version_vc = vc({1, 2});
  m.version_id = 99;
  m.version_origin = 1;
  m.version_seq = 2;
  m.latest_id = 101;

  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<ReadReturn>(*decoded);
  EXPECT_EQ(r.value.size(), 11u);
  EXPECT_EQ(r.value, m.value);
  EXPECT_EQ(r.version_id, 99u);
  EXPECT_EQ(r.latest_id, 101u);
}

TEST(CodecTest, PrepareRoundTrip) {
  PrepareRequest m;
  m.rpc_id = 5;
  m.reply_to = 2;
  m.tx = TxId(3, 4, 5);
  m.tx_vc = vc({5, 5, 5});
  m.writes = {{10, "a"}, {20, "bb"}};
  m.reads = {{10, 7}, {30, 0}};

  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<PrepareRequest>(*decoded);
  ASSERT_EQ(r.writes.size(), 2u);
  EXPECT_EQ(r.writes[1].key, 20u);
  EXPECT_EQ(r.writes[1].value, "bb");
  ASSERT_EQ(r.reads.size(), 2u);
  EXPECT_EQ(r.reads[0].version, 7u);
}

TEST(CodecTest, VoteRoundTrip) {
  VoteReply m;
  m.rpc_id = 9;
  m.ok = false;
  m.fail_reason = VoteFail::kValidation;
  m.collected_set = {TxId(1, 1, 1), TxId(2, 2, 2)};

  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<VoteReply>(*decoded);
  EXPECT_FALSE(r.ok);
  EXPECT_EQ(r.fail_reason, VoteFail::kValidation);
  ASSERT_EQ(r.collected_set.size(), 2u);
  EXPECT_EQ(r.collected_set[1], TxId(2, 2, 2));
}

TEST(CodecTest, DecideRoundTrip) {
  DecideMessage m;
  m.rpc_id = 77;
  m.reply_to = 4;
  m.tx = TxId(1, 2, 3);
  m.outcome = true;
  m.origin = 6;
  m.seq_no = 1234;
  m.commit_vc = vc({1, 2, 3, 4, 5, 6, 7});
  m.writes = {{1, "x"}};
  m.collected_set = {TxId(9, 9, 9)};

  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<DecideMessage>(*decoded);
  EXPECT_EQ(r.rpc_id, 77u);
  EXPECT_TRUE(r.outcome);
  EXPECT_EQ(r.seq_no, 1234u);
  EXPECT_EQ(r.commit_vc, m.commit_vc);
  ASSERT_EQ(r.collected_set.size(), 1u);
}

TEST(CodecTest, PropagateRoundTrip) {
  PropagateMessage m;
  m.origin = 4;
  m.from_seq = 100;
  m.to_seq = 120;
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<PropagateMessage>(*decoded);
  EXPECT_EQ(r.origin, 4u);
  EXPECT_EQ(r.from_seq, 100u);
  EXPECT_EQ(r.to_seq, 120u);
}

TEST(CodecTest, RemoveRoundTrip) {
  RemoveMessage m{TxId(7, 8, 9), {555, 7, 0xffffffffffffull}};
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<RemoveMessage>(*decoded);
  EXPECT_EQ(r.tx, TxId(7, 8, 9));
  EXPECT_EQ(r.keys, (std::vector<Key>{555, 7, 0xffffffffffffull}));
}

TEST(CodecTest, RemoveRoundTripEmptyKeyList) {
  RemoveMessage m{TxId(1, 2, 3), {}};
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<RemoveMessage>(*decoded);
  EXPECT_EQ(r.tx, TxId(1, 2, 3));
  EXPECT_TRUE(r.keys.empty());
}

TEST(CodecTest, EncodeIntoReusesBuffer) {
  RemoveMessage m{TxId(7, 8, 9), {1, 2, 3}};
  std::vector<std::uint8_t> buf;
  encode_message_into(m, buf);
  const auto once = buf;
  EXPECT_EQ(once, encode_message(m));
  // Re-encoding into the warmed buffer must not accumulate bytes.
  encode_message_into(m, buf);
  EXPECT_EQ(buf, once);
}

TEST(CodecTest, DecideAckRoundTrip) {
  DecideAck m{31337};
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(std::get<DecideAck>(*decoded).rpc_id, 31337u);
}

TEST(CodecTest, ResendRequestRoundTrip) {
  ResendRequest m;
  m.requester = 5;
  m.from_seq = 1000;
  m.to_seq = 1024;
  auto decoded = decode_message(encode_message(m));
  ASSERT_TRUE(decoded.has_value());
  const auto& r = std::get<ResendRequest>(*decoded);
  EXPECT_EQ(r.requester, 5u);
  EXPECT_EQ(r.from_seq, 1000u);
  EXPECT_EQ(r.to_seq, 1024u);
}

TEST(CodecTest, EmptyInputRejected) {
  EXPECT_FALSE(decode_message({}).has_value());
}

TEST(CodecTest, UnknownTagRejected) {
  std::vector<std::uint8_t> bytes{200, 0, 0, 0};
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(CodecTest, TrailingGarbageRejected) {
  auto bytes = encode_message(Message{DecideAck{1}});
  bytes.push_back(0xFF);
  EXPECT_FALSE(decode_message(bytes).has_value());
}

TEST(CodecTest, TruncationAlwaysRejected) {
  PrepareRequest m;
  m.tx = TxId(1, 1, 1);
  m.tx_vc = vc({1, 2, 3});
  m.writes = {{5, "value"}};
  auto bytes = encode_message(m);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode_message(truncated).has_value())
        << "truncation at " << cut << " was accepted";
  }
}

TEST(CodecTest, RandomBytesNeverCrash) {
  std::mt19937_64 rng(99);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    (void)decode_message(bytes);  // must not crash or hang
  }
}

// Fuzz round-trip: randomized ReadRequests survive the codec bit-exact.
class CodecFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(CodecFuzzTest, RandomReadRequestsRoundTrip) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  for (int iter = 0; iter < 200; ++iter) {
    ReadRequest m;
    m.rpc_id = rng();
    m.reply_to = static_cast<NodeId>(rng() % 64);
    m.tx.id = TxId{rng()};
    m.tx.read_only = rng() % 2 == 0;
    const std::size_t n = rng() % 24;
    m.tx.vc = VectorClock(n);
    m.tx.has_read = AccessVector(n);
    for (std::size_t i = 0; i < n; ++i) {
      m.tx.vc[i] = rng() % 1000;
      if (rng() % 2) m.tx.has_read.set(i);
    }
    m.key = rng();

    auto decoded = decode_message(encode_message(m));
    ASSERT_TRUE(decoded.has_value());
    const auto& r = std::get<ReadRequest>(*decoded);
    EXPECT_EQ(r.rpc_id, m.rpc_id);
    EXPECT_EQ(r.tx.id, m.tx.id);
    EXPECT_EQ(r.tx.vc, m.tx.vc);
    EXPECT_EQ(r.tx.has_read.bits(), m.tx.has_read.bits());
    EXPECT_EQ(r.key, m.key);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CodecFuzzTest, ::testing::Range(0, 4));

// ---- whole-variant fuzz ------------------------------------------------
// A random instance of every Message alternative must survive
// encode -> decode -> encode byte-exact (a fixed point implies decode lost
// nothing, given the per-field tests above pin the field mapping).

VectorClock random_vc(std::mt19937_64& rng) {
  VectorClock v(rng() % 16);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng() % 10'000;
  return v;
}

std::string random_value(std::mt19937_64& rng) {
  std::string s(rng() % 20, '\0');
  for (auto& c : s) c = static_cast<char>(rng());
  return s;
}

std::vector<WriteEntry> random_writes(std::mt19937_64& rng) {
  std::vector<WriteEntry> w(rng() % 6);
  for (auto& e : w) {
    e.key = rng();
    e.value = random_value(rng);
  }
  return w;
}

Message random_message(MessageType t, std::mt19937_64& rng) {
  switch (t) {
    case MessageType::kReadRequest: {
      ReadRequest m;
      m.rpc_id = rng();
      m.reply_to = static_cast<NodeId>(rng() % 64);
      m.tx.id = TxId{rng()};
      m.tx.read_only = rng() % 2 == 0;
      m.tx.vc = random_vc(rng);
      m.tx.has_read = AccessVector(m.tx.vc.size());
      for (std::size_t i = 0; i < m.tx.vc.size(); ++i) {
        if (rng() % 2) m.tx.has_read.set(i);
      }
      m.key = rng();
      return m;
    }
    case MessageType::kReadReturn: {
      ReadReturn m;
      m.rpc_id = rng();
      m.found = rng() % 2 == 0;
      m.value = random_value(rng);
      m.version_vc = random_vc(rng);
      m.version_id = rng();
      m.version_origin = static_cast<NodeId>(rng() % 64);
      m.version_seq = rng() % 100'000;
      m.latest_id = rng();
      m.server_seq = rng() % 100'000;
      return m;
    }
    case MessageType::kPrepareRequest: {
      PrepareRequest m;
      m.rpc_id = rng();
      m.reply_to = static_cast<NodeId>(rng() % 64);
      m.tx = TxId{rng()};
      m.tx_vc = random_vc(rng);
      m.writes = random_writes(rng);
      m.reads.resize(rng() % 5);
      for (auto& r : m.reads) {
        r.key = rng();
        r.version = rng();
      }
      return m;
    }
    case MessageType::kVoteReply: {
      VoteReply m;
      m.rpc_id = rng();
      m.ok = rng() % 2 == 0;
      m.fail_reason = static_cast<VoteFail>(rng() % 3);
      m.collected_set.resize(rng() % 5);
      for (auto& tx : m.collected_set) tx = TxId{rng()};
      return m;
    }
    case MessageType::kDecide: {
      DecideMessage m;
      m.rpc_id = rng();
      m.reply_to = static_cast<NodeId>(rng() % 64);
      m.tx = TxId{rng()};
      m.outcome = rng() % 2 == 0;
      m.origin = static_cast<NodeId>(rng() % 64);
      m.seq_no = rng() % 100'000;
      m.commit_vc = random_vc(rng);
      m.writes = random_writes(rng);
      m.collected_set.resize(rng() % 4);
      for (auto& tx : m.collected_set) tx = TxId{rng()};
      return m;
    }
    case MessageType::kPropagate:
      return PropagateMessage{static_cast<NodeId>(rng() % 64),
                              rng() % 100'000, rng() % 100'000};
    case MessageType::kRemove: {
      RemoveMessage m;
      m.tx = TxId{rng()};
      m.keys.resize(rng() % 6);
      for (auto& k : m.keys) k = rng();
      return m;
    }
    case MessageType::kDecideAck:
      return DecideAck{rng()};
    case MessageType::kResendRequest:
      return ResendRequest{static_cast<NodeId>(rng() % 64), rng() % 100'000,
                           rng() % 100'000};
  }
  return DecideAck{0};
}

TEST_P(CodecFuzzTest, EveryVariantRoundTripsByteExact) {
  std::mt19937_64 rng(GetParam() * 131 + 17);
  for (std::size_t t = 0; t < kNumMessageTypes; ++t) {
    for (int iter = 0; iter < 100; ++iter) {
      const auto type = static_cast<MessageType>(t);
      const Message m = random_message(type, rng);
      ASSERT_EQ(type_of(m), type);
      const auto bytes = encode_message(m);
      auto decoded = decode_message(bytes);
      ASSERT_TRUE(decoded.has_value())
          << "variant " << type_name(type) << " iter " << iter;
      EXPECT_EQ(type_of(*decoded), type);
      EXPECT_EQ(encode_message(*decoded), bytes)
          << "variant " << type_name(type) << " iter " << iter;
    }
  }
}

}  // namespace
}  // namespace fwkv::net
