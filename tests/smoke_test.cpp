// End-to-end smoke tests: every protocol boots a small cluster, commits
// transactions, and reads its own writes back.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "core/session.hpp"
#include "runtime/driver.hpp"
#include "workload/ycsb.hpp"

namespace fwkv {
namespace {

ClusterConfig small_cluster(Protocol p) {
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = p;
  cfg.net.one_way_latency = std::chrono::microseconds(5);
  cfg.net.serialize_messages = true;  // exercise the codec in tests
  return cfg;
}

class SmokeTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(SmokeTest, WriteThenReadBack) {
  Cluster cluster(small_cluster(GetParam()));
  for (Key k = 0; k < 100; ++k) cluster.load(k, "init");

  Session s = cluster.make_session(0, 0);
  auto tx = s.begin();
  EXPECT_EQ(s.read(tx, 7), "init");
  s.write(tx, 7, "updated");
  EXPECT_EQ(s.read(tx, 7), "updated") << "read-your-writes";
  ASSERT_TRUE(s.commit(tx));
  ASSERT_TRUE(cluster.quiesce());

  auto tx2 = s.begin(/*read_only=*/true);
  EXPECT_EQ(s.read(tx2, 7), "updated");
  EXPECT_TRUE(s.commit(tx2));
}

TEST_P(SmokeTest, MissingKeyReturnsNullopt) {
  Cluster cluster(small_cluster(GetParam()));
  cluster.load(1, "x");
  Session s = cluster.make_session(1, 0);
  auto tx = s.begin(true);
  EXPECT_FALSE(s.read(tx, 999).has_value());
  EXPECT_TRUE(s.commit(tx));
}

TEST_P(SmokeTest, YcsbDriverRuns) {
  Cluster cluster(small_cluster(GetParam()));
  ycsb::YcsbConfig ycfg;
  ycfg.total_keys = 2000;
  ycfg.read_only_ratio = 0.5;
  ycsb::YcsbWorkload workload(ycfg);
  workload.load(cluster);

  runtime::DriverConfig dcfg;
  dcfg.clients_per_node = 2;
  dcfg.warmup = std::chrono::milliseconds(50);
  dcfg.measure = std::chrono::milliseconds(200);
  auto result = runtime::run_driver(cluster, workload, dcfg);
  EXPECT_GT(result.clients.commits(), 0u);
  EXPECT_GT(result.throughput_tps(), 0.0);
  ASSERT_TRUE(cluster.quiesce());
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, SmokeTest,
                         ::testing::Values(Protocol::kFwKv, Protocol::kWalter,
                                           Protocol::kTwoPC),
                         [](const auto& info) {
                           return std::string(protocol_name(info.param)) ==
                                          "FW-KV"
                                      ? "FwKv"
                                      : protocol_name(info.param);
                         });

}  // namespace
}  // namespace fwkv
