// MVStore: reverse index, Remove handling, collected-set stamping.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "store/mv_store.hpp"
#include "store/sv_store.hpp"

namespace fwkv::store {
namespace {

constexpr std::size_t kNodes = 3;
const TxId kRo1(1, 0, 1);
const TxId kRo2(2, 0, 1);

VectorClock zero() { return VectorClock(kNodes); }
std::vector<bool> no_mask() { return std::vector<bool>(kNodes, false); }

TEST(MVStoreTest, LoadAndContains) {
  MVStore store;
  EXPECT_FALSE(store.contains(1));
  store.load(1, "a", kNodes);
  EXPECT_TRUE(store.contains(1));
  EXPECT_EQ(store.key_count(), 1u);
}

TEST(MVStoreTest, MissingKeyReadsNotFound) {
  MVStore store;
  EXPECT_FALSE(store.read_read_only(9, zero(), no_mask(), kRo1).found);
  EXPECT_FALSE(store.read_update(9, zero(), no_mask(), false).found);
  EXPECT_FALSE(store.read_walter(9, zero()).found);
}

TEST(MVStoreTest, ReadOnlyReadRegistersAndRemoveErases) {
  MVStore store;
  store.load(1, "a", kNodes);
  auto r = store.read_read_only(1, zero(), no_mask(), kRo1);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "a");

  std::vector<TxId> collected;
  store.collect_access_sets(std::vector<Key>{1}, collected);
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0], kRo1);

  store.remove_tx(kRo1, std::vector<Key>{1});
  collected.clear();
  store.collect_access_sets(std::vector<Key>{1}, collected);
  EXPECT_TRUE(collected.empty());
}

TEST(MVStoreTest, RemoveCleansEveryListedKey) {
  MVStore store;
  store.load(1, "a", kNodes);
  store.load(2, "b", kNodes);
  store.read_read_only(1, zero(), no_mask(), kRo1);
  store.read_read_only(2, zero(), no_mask(), kRo1);
  store.remove_tx(kRo1, std::vector<Key>{1, 2});
  std::vector<TxId> collected;
  store.collect_access_sets(std::vector<Key>{1, 2}, collected);
  EXPECT_TRUE(collected.empty());
}

TEST(MVStoreTest, RemoveOnlyTargetsTheGivenTx) {
  MVStore store;
  store.load(1, "a", kNodes);
  store.read_read_only(1, zero(), no_mask(), kRo1);
  store.read_read_only(1, zero(), no_mask(), kRo2);
  store.remove_tx(kRo1, std::vector<Key>{1});
  std::vector<TxId> collected;
  store.collect_access_sets(std::vector<Key>{1}, collected);
  ASSERT_EQ(collected.size(), 1u);
  EXPECT_EQ(collected[0], kRo2);
}

TEST(MVStoreTest, RemoveIsIdempotent) {
  MVStore store;
  store.load(1, "a", kNodes);
  store.read_read_only(1, zero(), no_mask(), kRo1);
  store.remove_tx(kRo1, std::vector<Key>{1});
  store.remove_tx(kRo1, std::vector<Key>{1});  // second remove: no-op
  EXPECT_EQ(store.access_set_footprint(), 0u);
}

TEST(MVStoreTest, RemoveToleratesUnknownAndDuplicateKeys) {
  MVStore store;
  store.load(1, "a", kNodes);
  store.read_read_only(1, zero(), no_mask(), kRo1);
  // Duplicate keys in the batched list and keys this node never saw must
  // both degrade to no-ops.
  store.remove_tx(kRo1, std::vector<Key>{1, 1, 424242});
  EXPECT_EQ(store.access_set_footprint(), 0u);
}

TEST(MVStoreTest, InstallStampsCollectedSet) {
  // Alg. 5 lines 17-20: the new version inherits the committing
  // transaction's collected anti-dependencies.
  MVStore store;
  store.load(1, "a", kNodes);
  VectorClock commit_vc(kNodes);
  commit_vc[0] = 1;
  std::vector<TxId> collected{kRo1, kRo2};
  store.install(1, "b", commit_vc, 0, 1, collected);

  std::vector<TxId> found;
  store.collect_access_sets(std::vector<Key>{1}, found);
  EXPECT_EQ(found.size(), 2u);
  // The stamped ids are removable through the reverse index alone — the
  // finishing transactions never read key 1, so their Removes cannot list
  // it.
  store.remove_tx(kRo1);
  store.remove_tx(kRo2);
  EXPECT_EQ(store.access_set_footprint(), 0u);
}

TEST(MVStoreTest, LateStampingOfRemovedTxIsSuppressed) {
  // A Remove raced ahead of a Decide that would re-stamp the id: the store
  // must not resurrect the finished transaction's id.
  MVStore store;
  store.load(1, "a", kNodes);
  store.read_read_only(1, zero(), no_mask(), kRo1);
  store.remove_tx(kRo1, std::vector<Key>{1});
  EXPECT_TRUE(store.recently_removed(kRo1));

  VectorClock commit_vc(kNodes);
  commit_vc[0] = 1;
  store.install(1, "b", commit_vc, 0, 1, std::vector<TxId>{kRo1});
  EXPECT_EQ(store.access_set_footprint(), 0u)
      << "removed transaction's id leaked into a new version";
}

TEST(MVStoreTest, RemovedRingOverflowForgetsOldTx) {
  // The removed-transaction memory is a bounded ring: flooding it past
  // capacity forgets the oldest finished transaction, after which late
  // stamping for that id is no longer suppressed — but the leaked id is
  // still reclaimable through the reverse index with a second Remove.
  MVStore store(/*shards=*/4, /*removed_capacity=*/16);
  store.load(1, "a", kNodes);
  store.remove_tx(kRo1);
  ASSERT_TRUE(store.recently_removed(kRo1));

  bool forgotten = false;
  for (std::uint32_t i = 1; i <= 1000 && !forgotten; ++i) {
    store.remove_tx(TxId(3, 1, i));
    forgotten = !store.recently_removed(kRo1);
  }
  ASSERT_TRUE(forgotten) << "ring overflow never evicted the old tx id";

  VectorClock commit_vc(kNodes);
  commit_vc[0] = 1;
  store.install(1, "b", commit_vc, 0, 1, std::vector<TxId>{kRo1});
  EXPECT_EQ(store.access_set_footprint(), 1u)
      << "a forgotten tx id must stamp again (suppression window is finite)";
  store.remove_tx(kRo1);  // reverse index still covers the stamped copy
  EXPECT_EQ(store.access_set_footprint(), 0u);
}

TEST(MVStoreTest, DuplicateIndexRefsForSameVersionAreHarmless) {
  // A tx id can be erased through both the batched key list and a reverse-
  // index ref pointing at the same version (a read registered in the VAS of
  // a version that a writer then re-stamped): all paths must tolerate the
  // double erase.
  MVStore store;
  store.load(1, "a", kNodes);
  store.read_read_only(1, zero(), no_mask(), kRo1);  // VAS of version 1

  VectorClock commit_vc(kNodes);
  commit_vc[0] = 1;
  // Stamps kRo1 onto version 2 AND registers an index ref for it.
  store.install(1, "b", commit_vc, 0, 1, std::vector<TxId>{kRo1});
  EXPECT_EQ(store.access_set_footprint(), 2u);

  // The key-list pass erases kRo1 from every version of key 1 (both copies);
  // the index pass then finds version 2 already clean.
  store.remove_tx(kRo1, std::vector<Key>{1});
  EXPECT_EQ(store.access_set_footprint(), 0u);
}

TEST(MVStoreTest, ConcurrentInstallRacingRemove) {
  // Alg. 5/6 race: Decides stamping a finishing RO transaction's id run
  // concurrently with its Remove. Whatever interleaving occurs, a final
  // Remove must leave no trace of the id (either the stamp was suppressed
  // by the recently-removed window or the reverse index reclaims it).
  MVStore store;
  constexpr Key kKeys = 8;
  for (Key k = 0; k < kKeys; ++k) store.load(k, "v", kNodes);
  const TxId victim(5, 1, 1);
  std::atomic<bool> stop{false};

  std::thread installer([&] {
    SeqNo seq = 0;
    std::vector<TxId> collected{victim};
    while (!stop.load()) {
      VectorClock commit_vc(kNodes);
      commit_vc[0] = ++seq;
      store.install(seq % kKeys, "w", commit_vc, 0, seq, collected);
    }
  });
  std::thread remover([&] {
    while (!stop.load()) {
      store.remove_tx(victim);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop = true;
  installer.join();
  remover.join();

  store.remove_tx(victim);  // reclaim anything the race left behind
  EXPECT_EQ(store.access_set_footprint(), 0u);
}

TEST(MVStoreTest, SeqlockValidateMatchesLatchedPathUnderConcurrency) {
  // The lock-free validate lane must agree with chain state while installs
  // mutate it. Validity of the *current* clock flips with each install, so
  // check the invariants that hold at all times instead of exact values.
  MVStore store;
  store.load(1, "v", kNodes);
  std::atomic<bool> stop{false};
  std::atomic<SeqNo> installed{0};

  std::thread installer([&] {
    SeqNo seq = 0;
    while (!stop.load()) {
      VectorClock commit_vc(kNodes);
      commit_vc[0] = ++seq;
      store.install(1, "w", commit_vc, 0, seq, {});
      installed.store(seq);
    }
  });
  std::thread validator([&] {
    VectorClock all_ahead(kNodes);
    all_ahead[0] = 1u << 30;
    VectorClock stale(kNodes);  // covers only the preloaded version
    while (!stop.load()) {
      EXPECT_TRUE(store.validate_key(1, all_ahead));
      if (installed.load() > 0) {
        // At least one install happened: the latest version's clock entry
        // is beyond the stale snapshot.
        EXPECT_FALSE(store.validate_key(1, stale));
        EXPECT_FALSE(store.validate_key_version(1, 1));
      }
      EXPECT_FALSE(store.validate_key_version(1, 0));
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop = true;
  installer.join();
  validator.join();
}

TEST(MVStoreTest, InstallCreatesMissingKey) {
  // TPC-C inserts (orders, order lines) write keys that were never loaded.
  MVStore store;
  VectorClock commit_vc(kNodes);
  commit_vc[1] = 4;
  store.install(77, "row", commit_vc, 1, 4, {});
  EXPECT_TRUE(store.contains(77));
  auto r = store.read_read_only(77, zero(), no_mask(), kRo1);
  EXPECT_EQ(r.value, "row");
}

TEST(MVStoreTest, ValidateKeyVersion) {
  MVStore store;
  store.load(1, "a", kNodes);  // version id 1
  EXPECT_TRUE(store.validate_key_version(1, 1));
  EXPECT_FALSE(store.validate_key_version(1, 0));
  VectorClock commit_vc(kNodes);
  commit_vc[0] = 1;
  store.install(1, "b", commit_vc, 0, 1, {});
  EXPECT_FALSE(store.validate_key_version(1, 1));
  EXPECT_TRUE(store.validate_key_version(1, 2));
  // Absent key: only "never observed" (0) validates.
  EXPECT_TRUE(store.validate_key_version(99, 0));
  EXPECT_FALSE(store.validate_key_version(99, 3));
}

TEST(MVStoreTest, ValidateKeyClockRule) {
  MVStore store;
  store.load(1, "a", kNodes);
  VectorClock commit_vc(kNodes);
  commit_vc[2] = 5;
  store.install(1, "b", commit_vc, 2, 5, {});
  VectorClock stale(kNodes);
  stale[2] = 4;
  EXPECT_FALSE(store.validate_key(1, stale));
  VectorClock fresh(kNodes);
  fresh[2] = 5;
  EXPECT_TRUE(store.validate_key(1, fresh));
  EXPECT_TRUE(store.validate_key(424242, stale)) << "absent key is valid";
}

TEST(MVStoreTest, FootprintCountsAllAccessSetEntries) {
  MVStore store;
  store.load(1, "a", kNodes);
  store.load(2, "b", kNodes);
  store.read_read_only(1, zero(), no_mask(), kRo1);
  store.read_read_only(2, zero(), no_mask(), kRo1);
  store.read_read_only(2, zero(), no_mask(), kRo2);
  EXPECT_EQ(store.access_set_footprint(), 3u);
}

TEST(MVStoreTest, ConcurrentReadersAndRemovers) {
  MVStore store;
  for (Key k = 0; k < 16; ++k) store.load(k, "v", kNodes);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  std::vector<Key> all_keys;
  for (Key k = 0; k < 16; ++k) all_keys.push_back(k);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      std::uint32_t seq = 0;
      while (!stop.load()) {
        TxId me(static_cast<NodeId>(t), 1, ++seq);
        for (Key k = 0; k < 16; ++k) {
          store.read_read_only(k, zero(), no_mask(), me);
        }
        store.remove_tx(me, all_keys);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop = true;
  for (auto& t : threads) t.join();
  // Every reader removed itself: the store must be clean again.
  EXPECT_EQ(store.access_set_footprint(), 0u);
}

TEST(MVStoreTest, WithChainRunsUnderLatch) {
  MVStore store;
  store.load(5, "x", kNodes);
  bool ran = false;
  EXPECT_TRUE(store.with_chain(5, [&](VersionChain& chain) {
    ran = true;
    EXPECT_EQ(chain.latest().value, "x");
  }));
  EXPECT_TRUE(ran);
  EXPECT_FALSE(store.with_chain(99, [](VersionChain&) {}));
}

TEST(SVStoreTest, BasicsAndValidation) {
  SVStore store;
  store.load(1, "a");
  auto item = store.read(1);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->value, "a");
  EXPECT_EQ(item->version, 1u);
  EXPECT_TRUE(store.validate(1, 1));
  store.install(1, "b");
  EXPECT_FALSE(store.validate(1, 1));
  EXPECT_TRUE(store.validate(1, 2));
  EXPECT_EQ(store.read(1)->value, "b");
  EXPECT_FALSE(store.read(404).has_value());
  EXPECT_TRUE(store.validate(404, 0));
  EXPECT_EQ(store.key_count(), 1u);
}

TEST(SVStoreTest, InstallCreates) {
  SVStore store;
  store.install(7, "new");
  EXPECT_EQ(store.read(7)->version, 1u);
}

}  // namespace
}  // namespace fwkv::store
