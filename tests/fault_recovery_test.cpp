// Targeted recovery scenarios for the fault-injection hardening: a
// participant stalling mid-Prepare, redelivered Prepares, and gap repair
// of dropped Propagate traffic. The chaos property suites (psi_history,
// invariant) cover these paths statistically; here each mechanism is
// exercised in isolation with a deterministic schedule.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/rng.hpp"
#include "core/cluster.hpp"
#include "core/mv_node.hpp"
#include "core/session.hpp"

namespace fwkv {
namespace {

using namespace std::chrono_literals;

/// A key whose preferred node is `node`, starting the search at `hint`.
Key key_on_node(const Cluster& cluster, NodeId node, Key hint = 0) {
  Key k = hint;
  while (cluster.node_for_key(k) != node) ++k;
  return k;
}

class ParticipantStallTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ParticipantStallTest, CoordinatorTimesOutAndLocksAreReleased) {
  // A participant pauses before it can process a Prepare. The coordinator
  // must timeout-abort (not hang), and once the participant resumes and
  // processes the deferred Prepare + abort Decide, its locks must be free:
  // a retry of the same writes commits.
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = GetParam();
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  cfg.protocol_config.rpc_timeout = 60ms;
  Cluster cluster(cfg);

  const Key remote = key_on_node(cluster, 1);
  cluster.load(remote, "seed");

  // Stall node 1 past the coordinator's vote timeout.
  cluster.network().pause_node(1, 400ms);

  Session s = cluster.make_session(0, 0);
  auto tx = s.begin();
  s.write(tx, remote, "stalled");  // blind write: only Prepare goes out
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(s.commit(tx)) << "commit succeeded against a stalled node";
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 350ms)
      << "coordinator waited out the stall instead of timing out";
  EXPECT_EQ(tx.abort_reason(), AbortReason::kVoteTimeout);
  EXPECT_GE(cluster.aggregate_stats().aborts_vote_timeout, 1u);

  // Let the pause window elapse; the deferred Prepare (locks taken, vote
  // lost to the dead rpc slot) and abort Decide (locks released) drain.
  std::this_thread::sleep_for(450ms);
  ASSERT_TRUE(cluster.quiesce(10s));

  auto retry = s.begin();
  s.write(retry, remote, "recovered");
  EXPECT_TRUE(s.commit(retry))
      << "locks still held after the participant resumed";

  auto check = s.begin(true);
  auto v = s.read(check, remote);
  s.commit(check);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "recovered");
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ParticipantStallTest,
                         ::testing::Values(Protocol::kFwKv, Protocol::kWalter,
                                           Protocol::kTwoPC),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kFwKv:
                               return "FwKv";
                             case Protocol::kWalter:
                               return "Walter";
                             default:
                               return "TwoPC";
                           }
                         });

class DuplicatePrepareTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(DuplicatePrepareTest, RedeliveredPreparesAreIdempotent) {
  // Every Prepare is delivered twice. Participants must deduplicate by tx
  // id (the duplicate may race the original or arrive after the Decide);
  // a double-applied Prepare would deadlock its own retry on the lock
  // table or leak locks. All transfers and the final audit must succeed.
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = GetParam();
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  cfg.net.faults.seed = 7;
  cfg.net.faults
      .message[static_cast<std::size_t>(net::MessageType::kPrepareRequest)]
      .duplicate = 1.0;
  cfg.protocol_config.rpc_timeout = 100ms;
  Cluster cluster(cfg);

  constexpr Key kKeys = 9;
  for (Key k = 0; k < kKeys; ++k) cluster.load(k, "0");

  Session s = cluster.make_session(0, 0);
  Rng rng(5);
  std::uint64_t committed = 0;
  for (int i = 0; i < 120; ++i) {
    const Key k = rng.next_below(kKeys);
    auto tx = s.begin();
    auto v = s.read(tx, k);
    if (!v) continue;
    s.write(tx, k, std::to_string(std::strtoll(v->c_str(), nullptr, 10) + 1));
    if (s.commit(tx)) ++committed;
  }
  ASSERT_TRUE(cluster.quiesce(10s));
  ASSERT_GT(committed, 0u);

  auto audit = s.begin(true);
  std::int64_t total = 0;
  for (Key k = 0; k < kKeys; ++k) {
    auto v = s.read(audit, k);
    ASSERT_TRUE(v.has_value());
    total += std::strtoll(v->c_str(), nullptr, 10);
  }
  s.commit(audit);
  EXPECT_EQ(static_cast<std::uint64_t>(total), committed)
      << "a duplicated Prepare was double-applied or lost";
  EXPECT_GT(cluster.aggregate_stats().dup_drops, 0u)
      << "dedup never fired although every Prepare was duplicated";
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, DuplicatePrepareTest,
                         ::testing::Values(Protocol::kFwKv, Protocol::kWalter,
                                           Protocol::kTwoPC),
                         [](const auto& info) {
                           switch (info.param) {
                             case Protocol::kFwKv:
                               return "FwKv";
                             case Protocol::kWalter:
                               return "Walter";
                             default:
                               return "TwoPC";
                           }
                         });

class GapRepairTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(GapRepairTest, SiteVcCatchesUpThroughResendRequests) {
  // Propagates from node 0 are dropped 90% of the time. Local-only commits
  // at node 0 reach the other sites only via Propagate, so a later
  // cross-site Decide arrives with a seq gap; the receiver's watchdog must
  // keep re-requesting the missing range until a replay survives the loss.
  ClusterConfig cfg;
  cfg.num_nodes = 3;
  cfg.protocol = GetParam();
  cfg.net.one_way_latency = std::chrono::microseconds(20);
  cfg.net.faults.seed = 13;
  cfg.net.faults
      .message[static_cast<std::size_t>(net::MessageType::kPropagate)]
      .drop = 0.9;
  cfg.protocol_config.rpc_timeout = 100ms;
  cfg.protocol_config.gap_request_delay = 2ms;
  Cluster cluster(cfg);

  const Key local = key_on_node(cluster, 0);
  const Key remote = key_on_node(cluster, 1);
  cluster.load(local, "0");
  cluster.load(remote, "0");

  Session s = cluster.make_session(0, 0);
  for (int round = 0; round < 20; ++round) {
    // Local-only commits: their seqs travel by Propagate alone.
    for (int i = 0; i < 5; ++i) {
      auto tx = s.begin();
      s.write(tx, local, std::to_string(round * 10 + i));
      ASSERT_TRUE(s.commit(tx));
    }
    // A cross-site commit delivers a Decide with a seq beyond the dropped
    // Propagate range, opening a gap at node 1. It can abort while the
    // previous round's write lock waits behind a not-yet-repaired gap, so
    // retry until the repair lets it through.
    bool committed = false;
    for (int attempt = 0; attempt < 200 && !committed; ++attempt) {
      auto tx = s.begin();
      s.write(tx, remote, std::to_string(round));
      committed = s.commit(tx);
      if (!committed) std::this_thread::sleep_for(2ms);
    }
    ASSERT_TRUE(committed) << "cross-site commit starved in round " << round;
  }
  ASSERT_TRUE(cluster.quiesce(10s))
      << "gap repair failed to converge (seed 13, 90% Propagate loss)";

  const auto& origin =
      dynamic_cast<const MvNodeBase&>(cluster.node(0));
  const auto& receiver =
      dynamic_cast<const MvNodeBase&>(cluster.node(1));
  EXPECT_EQ(receiver.site_vc()[0], origin.site_vc()[0])
      << "node 1 never caught up with node 0's commit sequence";

  const auto stats = cluster.aggregate_stats();
  EXPECT_GT(stats.gap_requests, 0u) << "watchdog never requested the gap";
  EXPECT_GT(stats.gap_resends, 0u) << "origin never replayed the gap";
}

INSTANTIATE_TEST_SUITE_P(PsiProtocols, GapRepairTest,
                         ::testing::Values(Protocol::kFwKv,
                                           Protocol::kWalter),
                         [](const auto& info) {
                           return info.param == Protocol::kFwKv ? "FwKv"
                                                                : "Walter";
                         });

}  // namespace
}  // namespace fwkv
