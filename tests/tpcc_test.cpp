// TPC-C schema, loader, key placement and transaction-profile semantics.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <random>

#include "workload/tpcc.hpp"

namespace fwkv::tpcc {
namespace {

// ---- key encoding ----

TEST(TpccKeyTest, FieldsRoundTrip) {
  const Key k = make_key(Table::kOrderLine, 123, 9, 456789, 15);
  EXPECT_EQ(table_of(k), Table::kOrderLine);
  EXPECT_EQ(warehouse_of(k), 123u);
  EXPECT_EQ(district_of(k), 9u);
  EXPECT_EQ(entity_of(k), 456789u);
  EXPECT_EQ(sub_of(k), 15u);
}

TEST(TpccKeyTest, DistinctTablesNeverCollide) {
  const Key a = customer_key(1, 2, 3);
  const Key b = stock_key(1, 2);
  const Key c = order_key(1, 2, 3);
  const Key d = district_key(1, 2);
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
  EXPECT_NE(c, d);
}

class TpccKeySweepTest : public ::testing::TestWithParam<int> {};

TEST_P(TpccKeySweepTest, EncodingIsInjectiveOverRandomTuples) {
  std::mt19937_64 rng(GetParam() * 7 + 1);
  for (int i = 0; i < 500; ++i) {
    const auto t = static_cast<Table>(1 + rng() % 10);
    const auto w = static_cast<std::uint32_t>(rng() % (1 << 14));
    const auto d = static_cast<std::uint32_t>(rng() % (1 << 6));
    const auto a = static_cast<std::uint32_t>(rng() % (1 << 22));
    const auto b = static_cast<std::uint32_t>(rng() % (1 << 16));
    const Key k = make_key(t, w, d, a, b);
    EXPECT_EQ(table_of(k), t);
    EXPECT_EQ(warehouse_of(k), w);
    EXPECT_EQ(district_of(k), d);
    EXPECT_EQ(entity_of(k), a);
    EXPECT_EQ(sub_of(k), b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TpccKeySweepTest, ::testing::Range(0, 3));

// ---- row codecs ----

TEST(TpccRowTest, WarehouseRoundTrip) {
  WarehouseRow row;
  row.name = "Acme";
  row.street = "1 Main St";
  row.city = "Bethlehem";
  row.state = "PA";
  row.zip = "180150000";
  row.tax_bp = 725;
  row.ytd_cents = 30'000'000;
  auto decoded = WarehouseRow::decode(row.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->name, "Acme");
  EXPECT_EQ(decoded->tax_bp, 725u);
  EXPECT_EQ(decoded->ytd_cents, 30'000'000);
}

TEST(TpccRowTest, DistrictRoundTrip) {
  DistrictRow row;
  row.name = "D1";
  row.tax_bp = 100;
  row.ytd_cents = -50;  // negative money must survive
  row.next_o_id = 3001;
  row.next_delivery_o_id = 2101;
  auto decoded = DistrictRow::decode(row.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ytd_cents, -50);
  EXPECT_EQ(decoded->next_o_id, 3001u);
  EXPECT_EQ(decoded->next_delivery_o_id, 2101u);
}

TEST(TpccRowTest, CustomerRoundTrip) {
  CustomerRow row;
  row.first = "Jane";
  row.last = "BARBARBAR";
  row.credit = "GC";
  row.discount_bp = 1234;
  row.credit_lim_cents = 5'000'000;
  row.balance_cents = -1000;
  row.ytd_payment_cents = 999;
  row.payment_cnt = 3;
  row.delivery_cnt = 1;
  auto decoded = CustomerRow::decode(row.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->balance_cents, -1000);
  EXPECT_EQ(decoded->payment_cnt, 3u);
}

TEST(TpccRowTest, OrderAndLinesRoundTrip) {
  OrderRow order;
  order.c_id = 42;
  order.entry_d = 0xDEADBEEF;
  order.carrier_id = 7;
  order.ol_cnt = 11;
  order.all_local = false;
  auto decoded = OrderRow::decode(order.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->ol_cnt, 11u);
  EXPECT_FALSE(decoded->all_local);

  OrderLineRow ol;
  ol.i_id = 9;
  ol.supply_w_id = 3;
  ol.delivery_d = 123;
  ol.quantity = 5;
  ol.amount_cents = 4599;
  ol.dist_info = std::string(24, 'x');
  auto dol = OrderLineRow::decode(ol.encode());
  ASSERT_TRUE(dol.has_value());
  EXPECT_EQ(dol->amount_cents, 4599);
  EXPECT_EQ(dol->dist_info.size(), 24u);
}

TEST(TpccRowTest, RemainingRowsRoundTrip) {
  ItemRow item;
  item.name = "widget";
  item.price_cents = 999;
  item.data = "ORIGINAL";
  EXPECT_EQ(ItemRow::decode(item.encode())->price_cents, 999);

  StockRow stock;
  stock.quantity = -3;  // can go negative before restock
  stock.ytd = 55;
  stock.order_cnt = 6;
  stock.remote_cnt = 2;
  auto ds = StockRow::decode(stock.encode());
  ASSERT_TRUE(ds.has_value());
  EXPECT_EQ(ds->quantity, -3);
  EXPECT_EQ(ds->remote_cnt, 2u);

  EXPECT_TRUE(NewOrderRow::decode(NewOrderRow{false}.encode()).has_value());
  EXPECT_FALSE(NewOrderRow::decode(NewOrderRow{false}.encode())->pending);

  HistoryRow hist;
  hist.c_id = 1;
  hist.amount_cents = 100;
  hist.data = "w d";
  EXPECT_EQ(HistoryRow::decode(hist.encode())->amount_cents, 100);

  EXPECT_EQ(CustomerLastOrderRow::decode(
                CustomerLastOrderRow{77}.encode())->o_id,
            77u);
}

TEST(TpccRowTest, GarbageRejected) {
  EXPECT_FALSE(WarehouseRow::decode("").has_value());
  EXPECT_FALSE(DistrictRow::decode("xx").has_value());
  EXPECT_FALSE(OrderRow::decode("y").has_value());
}

// ---- placement ----

TEST(TpccMapperTest, WarehouseRowsShareAHomeNode) {
  TpccKeyMapper mapper(4);
  for (std::uint32_t w = 0; w < 16; ++w) {
    const NodeId home = mapper.node_for(warehouse_key(w));
    EXPECT_EQ(home, w % 4);
    EXPECT_EQ(mapper.node_for(district_key(w, 3)), home);
    EXPECT_EQ(mapper.node_for(customer_key(w, 3, 42)), home);
    EXPECT_EQ(mapper.node_for(stock_key(w, 17)), home);
    EXPECT_EQ(mapper.node_for(order_key(w, 3, 9)), home);
    EXPECT_EQ(mapper.node_for(order_line_key(w, 3, 9, 1)), home);
  }
}

TEST(TpccMapperTest, ItemsSpreadAcrossNodes) {
  TpccKeyMapper mapper(4);
  std::vector<bool> hit(4, false);
  for (std::uint32_t i = 1; i <= 200; ++i) {
    hit[mapper.node_for(item_key(i))] = true;
  }
  for (bool h : hit) EXPECT_TRUE(h);
}

// ---- loader + profiles ----

class TpccFixture : public ::testing::Test {
 protected:
  static constexpr std::uint32_t kNodes = 2;

  TpccFixture() {
    ClusterConfig cfg;
    cfg.num_nodes = kNodes;
    cfg.net.one_way_latency = std::chrono::microseconds(5);
    cfg.mapper = TpccWorkload::make_mapper(kNodes);
    cluster_ = std::make_unique<Cluster>(cfg);

    TpccConfig tcfg;
    tcfg.warehouses_per_node = 1;
    tcfg.customers_per_district = 10;
    tcfg.items = 50;
    tcfg.initial_orders_per_district = 2;
    workload_ = std::make_unique<TpccWorkload>(tcfg, kNodes);
    workload_->load(*cluster_);
  }

  template <typename Row>
  Row fetch(Key key) {
    Session s = cluster_->make_session(0, 90);
    auto tx = s.begin(true);
    auto raw = s.read(tx, key);
    s.commit(tx);
    EXPECT_TRUE(raw.has_value()) << "missing key";
    auto row = Row::decode(raw.value_or(""));
    EXPECT_TRUE(row.has_value()) << "row did not parse";
    return row.value_or(Row{});
  }

  std::unique_ptr<Cluster> cluster_;
  std::unique_ptr<TpccWorkload> workload_;
};

TEST_F(TpccFixture, LoaderPopulatesSchema) {
  EXPECT_EQ(workload_->total_warehouses(), 2u);
  auto wh = fetch<WarehouseRow>(warehouse_key(0));
  EXPECT_FALSE(wh.name.empty());
  auto dist = fetch<DistrictRow>(district_key(0, 1));
  EXPECT_EQ(dist.next_o_id, 3u);  // 2 initial orders
  auto cust = fetch<CustomerRow>(customer_key(1, 10, 10));
  EXPECT_EQ(cust.balance_cents, -1000);
  auto item = fetch<ItemRow>(item_key(50));
  EXPECT_GT(item.price_cents, 0);
  auto stock = fetch<StockRow>(stock_key(1, 50));
  EXPECT_GE(stock.quantity, 10);
}

TEST_F(TpccFixture, NewOrderAdvancesDistrictSequenceAndWritesRows) {
  Session s = cluster_->make_session(0, 0);
  Rng rng(1);
  runtime::ClientStats stats;
  const auto before = fetch<DistrictRow>(district_key(0, 1));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(workload_->run_new_order(s, rng, stats));
  }
  EXPECT_EQ(stats.update_commits, 20u);
  ASSERT_TRUE(cluster_->quiesce());
  // Orders spread across warehouses/districts; total next_o_id advance
  // equals the number of NewOrders.
  std::uint32_t advance = 0;
  for (std::uint32_t w = 0; w < 2; ++w) {
    for (std::uint32_t d = 1; d <= 10; ++d) {
      advance += fetch<DistrictRow>(district_key(w, d)).next_o_id;
    }
  }
  const std::uint32_t baseline = 2 * 10 * before.next_o_id;
  EXPECT_EQ(advance, baseline + 20);
}

TEST_F(TpccFixture, NewOrderRowsAreConsistent) {
  Session s = cluster_->make_session(0, 0);
  Rng rng(2);
  runtime::ClientStats stats;
  ASSERT_TRUE(workload_->run_new_order(s, rng, stats));
  ASSERT_TRUE(cluster_->quiesce());

  // Find the district whose sequence advanced and check its newest order.
  for (std::uint32_t w = 0; w < 2; ++w) {
    for (std::uint32_t d = 1; d <= 10; ++d) {
      auto dist = fetch<DistrictRow>(district_key(w, d));
      if (dist.next_o_id == 4) {  // 3 initial + the new one... see loader
        const std::uint32_t o = dist.next_o_id - 1;
        auto order = fetch<OrderRow>(order_key(w, d, o));
        EXPECT_GE(order.ol_cnt, 5u);
        EXPECT_LE(order.ol_cnt, 15u);
        for (std::uint32_t l = 1; l <= order.ol_cnt; ++l) {
          auto ol = fetch<OrderLineRow>(order_line_key(w, d, o, l));
          EXPECT_GT(ol.i_id, 0u);
          EXPECT_GT(ol.amount_cents, 0);
        }
        auto last = fetch<CustomerLastOrderRow>(
            customer_last_order_key(w, d, order.c_id));
        EXPECT_EQ(last.o_id, o);
        return;
      }
    }
  }
  FAIL() << "no district advanced";
}

TEST_F(TpccFixture, PaymentMovesMoney) {
  Session s = cluster_->make_session(0, 0);
  Rng rng(3);
  runtime::ClientStats stats;
  std::int64_t wh_before = 0;
  for (std::uint32_t w = 0; w < 2; ++w) {
    wh_before += fetch<WarehouseRow>(warehouse_key(w)).ytd_cents;
  }
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(workload_->run_payment(s, rng, stats));
  }
  ASSERT_TRUE(cluster_->quiesce());
  std::int64_t wh_after = 0;
  for (std::uint32_t w = 0; w < 2; ++w) {
    wh_after += fetch<WarehouseRow>(warehouse_key(w)).ytd_cents;
  }
  EXPECT_GT(wh_after, wh_before) << "payments did not raise warehouse YTD";
}

TEST_F(TpccFixture, DeliveryDeliversOldestUndeliveredOrder) {
  Session s = cluster_->make_session(0, 0);
  Rng rng(4);
  runtime::ClientStats stats;
  // Deliver many times; district delivery pointers must never pass the
  // order sequence.
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(workload_->run_delivery(s, rng, stats));
  }
  ASSERT_TRUE(cluster_->quiesce());
  for (std::uint32_t w = 0; w < 2; ++w) {
    for (std::uint32_t d = 1; d <= 10; ++d) {
      auto dist = fetch<DistrictRow>(district_key(w, d));
      EXPECT_LE(dist.next_delivery_o_id, dist.next_o_id);
      // Every order below the pointer is delivered (carrier set).
      for (std::uint32_t o = 1; o < dist.next_delivery_o_id; ++o) {
        auto order = fetch<OrderRow>(order_key(w, d, o));
        EXPECT_GT(order.carrier_id, 0u)
            << "w" << w << " d" << d << " o" << o << " skipped";
      }
    }
  }
}

TEST_F(TpccFixture, OrderStatusAndStockLevelCommit) {
  Session s = cluster_->make_session(1, 0);
  Rng rng(5);
  runtime::ClientStats stats;
  for (int i = 0; i < 15; ++i) {
    EXPECT_TRUE(workload_->run_order_status(s, rng, stats));
    EXPECT_TRUE(workload_->run_stock_level(s, rng, stats));
  }
  EXPECT_EQ(stats.ro_commits, 30u);
  EXPECT_EQ(stats.update_commits, 0u);
  ASSERT_TRUE(cluster_->quiesce());
}

TEST(TpccMixTest, ProfileSharesMatchConfig) {
  TpccConfig cfg;
  cfg.read_only_ratio = 0.2;
  TpccWorkload workload(cfg, 4);
  Rng rng(6);
  std::array<int, kNumProfiles> counts{};
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(workload.pick_profile(rng))];
  }
  const double ro_share =
      static_cast<double>(counts[3] + counts[4]) / n;  // OrderStatus+Stock
  EXPECT_NEAR(ro_share, 0.2, 0.02);
  const double new_order_share = static_cast<double>(counts[0]) / n;
  EXPECT_NEAR(new_order_share, 0.8 * 0.47, 0.03);
  for (int c : counts) EXPECT_GT(c, 0);
}

}  // namespace
}  // namespace fwkv::tpcc
