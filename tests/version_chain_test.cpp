// Version-selection rules (Alg. 3) at the chain level, including the
// paper's Fig. 2 / Fig. 3 vector-clock configurations.
#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "store/version_chain.hpp"

namespace fwkv::store {
namespace {

const TxId kReader(3, 0, 1);

VectorClock vc(std::initializer_list<SeqNo> init) { return VectorClock(init); }

/// value "v<id>", commit clock with [origin]=seq plus explicit extras.
Version& add(VersionChain& chain, std::size_t nodes, NodeId origin, SeqNo seq,
             std::initializer_list<SeqNo> clock = {}) {
  VectorClock commit_vc =
      clock.size() == 0 ? VectorClock(nodes) : VectorClock(clock);
  commit_vc[origin] = seq;
  return chain.install("v" + std::to_string(seq), std::move(commit_vc),
                       origin, seq);
}

TEST(VersionChainTest, InstallAssignsMonotonicIds) {
  VersionChain chain;
  EXPECT_EQ(add(chain, 3, 0, 1).id, 1u);
  EXPECT_EQ(add(chain, 3, 0, 2).id, 2u);
  EXPECT_EQ(add(chain, 3, 1, 1).id, 3u);
  EXPECT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain.latest().id, 3u);
}

TEST(VersionChainTest, GcRespectsRetentionThenBoundsChain) {
  VersionChain chain;
  for (SeqNo s = 1; s <= VersionChain::kMaxVersions + 40; ++s) {
    add(chain, 2, 0, s);
  }
  // Everything is younger than the retention window: nothing pruned yet,
  // so a stalled reader can still be served any of these versions.
  EXPECT_EQ(chain.size(), VersionChain::kMaxVersions + 40);
  std::this_thread::sleep_for(VersionChain::kRetention +
                              std::chrono::milliseconds(50));
  add(chain, 2, 0, VersionChain::kMaxVersions + 41);
  EXPECT_LE(chain.size(), VersionChain::kMaxVersions + 1);
  EXPECT_EQ(chain.latest().id, VersionChain::kMaxVersions + 41);
}

TEST(VersionChainTest, GcSkipsVersionsWithAccessSets) {
  VersionChain chain;
  add(chain, 2, 0, 1).access_set_insert(kReader);
  for (SeqNo s = 2; s <= VersionChain::kMaxVersions + 10; ++s) {
    add(chain, 2, 0, s);
  }
  // The pinned first version blocks pruning (prune stops at non-empty VAS).
  EXPECT_EQ(chain.versions().front().id, 1u);
}

TEST(VersionChainTest, AccessSetInsertEraseContains) {
  VersionChain chain;
  Version& v = add(chain, 2, 0, 1);
  EXPECT_FALSE(v.access_set_contains(kReader));
  EXPECT_TRUE(v.access_set_insert(kReader));
  EXPECT_FALSE(v.access_set_insert(kReader)) << "duplicate insert";
  EXPECT_TRUE(v.access_set_contains(kReader));
  EXPECT_TRUE(v.access_set_erase(kReader));
  EXPECT_FALSE(v.access_set_erase(kReader));
  // Stamped ids live in both sets; one erase clears both.
  EXPECT_TRUE(v.stamp_insert(kReader));
  EXPECT_FALSE(v.stamp_insert(kReader)) << "duplicate stamp";
  EXPECT_TRUE(v.excluded_contains(kReader));
  EXPECT_TRUE(v.access_set_erase(kReader));
  EXPECT_FALSE(v.excluded_contains(kReader));
  EXPECT_FALSE(v.access_set_contains(kReader));
}

// ---- read-only selection (Alg. 3 lines 2-10) ----

TEST(ReadOnlySelect, FirstContactReturnsLatest) {
  VersionChain chain;
  add(chain, 3, 1, 1);
  add(chain, 3, 1, 2);
  add(chain, 3, 2, 9);  // far ahead of any snapshot
  // No site read yet: everything is visible, freshest id wins.
  auto r = chain.select_read_only(vc({0, 0, 0}), {false, false, false},
                                  kReader);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "v9");
  EXPECT_EQ(r.latest_id, 3u);
}

TEST(ReadOnlySelect, RegistersReaderInAccessSet) {
  VersionChain chain;
  add(chain, 3, 1, 1);
  chain.select_read_only(vc({0, 0, 0}), {false, false, false}, kReader);
  EXPECT_TRUE(chain.latest().access_set_contains(kReader));
}

TEST(ReadOnlySelect, MaskConstrainsVisibility) {
  VersionChain chain;
  add(chain, 3, 1, 5);
  add(chain, 3, 1, 8);
  // Reader already read from site 1 with T.VC[1] = 5: v(seq 8) invisible.
  auto r = chain.select_read_only(vc({0, 5, 0}), {false, true, false},
                                  kReader);
  EXPECT_EQ(r.value, "v5");
}

TEST(ReadOnlySelect, AccessSetExcludesAntiDependentVersion) {
  // Fig. 2: y1 was stamped with T1's id at install (propagated by T3's
  // commit); T1's read of y must fall back to y0 even though y1 is visible.
  VersionChain chain;
  add(chain, 3, 1, 5);                           // y0
  add(chain, 3, 2, 7).stamp_insert(kReader);     // y1, excluded={T1}
  auto r = chain.select_read_only(vc({0, 7, 0}), {false, true, false},
                                  kReader);
  EXPECT_EQ(r.value, "v5") << "anti-dependent version was returned";
}

TEST(ReadOnlySelect, ReadRegistrationDoesNotExclude) {
  // A plain read-time registration (retried/redelivered rpc) is not an
  // anti-dependency: the re-read must be served the registered version,
  // not be bounced to an older one (that would tear the snapshot).
  VersionChain chain;
  add(chain, 3, 1, 5);
  add(chain, 3, 1, 7).access_set_insert(kReader);
  auto r = chain.select_read_only(vc({0, 7, 0}), {false, true, false},
                                  kReader);
  EXPECT_EQ(r.value, "v7") << "retried read was served a stale version";
}

TEST(ReadOnlySelect, FallsBackToNewestExcludedVersion) {
  // Every visible version is stamped against the reader: return the newest
  // of them rather than nothing (best effort past GC's retention bound).
  VersionChain chain;
  add(chain, 2, 0, 1).stamp_insert(kReader);
  add(chain, 2, 0, 2).stamp_insert(kReader);
  auto r = chain.select_read_only(vc({2, 0}), {true, false}, kReader);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.value, "v2");
}

TEST(ReadOnlySelect, EmptyChainNotFound) {
  VersionChain chain;
  EXPECT_FALSE(
      chain.select_read_only(vc({0, 0}), {false, false}, kReader).found);
}

TEST(ReadOnlySelect, LatestIdReportsFreshnessGap) {
  VersionChain chain;
  add(chain, 2, 0, 1);
  add(chain, 2, 0, 2);
  add(chain, 2, 0, 3);
  auto r = chain.select_read_only(vc({1, 0}), {true, false}, kReader);
  EXPECT_EQ(r.id, 1u);
  EXPECT_EQ(r.latest_id, 3u);  // gap of 2 versions
}

// ---- update-transaction selection (Alg. 3 lines 11-18) ----

TEST(UpdateSelect, FirstReadReturnsLatestRegardlessOfSnapshot) {
  // Fig. 4: T1's begin snapshot is <2,5> but x1 has VC <2,7>; the first
  // read still returns x1.
  VersionChain chain;
  add(chain, 2, 1, 4, {2, 4});  // x0
  add(chain, 2, 1, 7, {2, 7});  // x1
  auto r = chain.select_update(vc({2, 5}), {false, false},
                               /*snapshot_fixed=*/false);
  EXPECT_EQ(r.value, "v7");
}

TEST(UpdateSelect, Figure3SafeSnapshotExcludesSuspectVersion) {
  // Fig. 3: T1 read x0 at N2 (T1.VC = <2,7,6>, hasRead = {N2}); T3 then
  // committed y1 with VC <2,7,7>. y1 is equal on the read site (7) and
  // ahead on unread N3 (7 > 6) -> excluded; y0 is returned.
  VersionChain chain;
  add(chain, 3, 1, 5, {2, 5, 6});  // y0
  add(chain, 3, 2, 7, {2, 7, 7});  // y1
  auto r = chain.select_update(vc({2, 7, 6}), {false, true, false},
                               /*snapshot_fixed=*/true);
  EXPECT_EQ(r.value, "v5");
}

TEST(UpdateSelect, NotExcludedWhenReadSiteEntryDiffers) {
  // If the candidate's clock is *behind* on a read site, the equality
  // clause fails and the version stays visible.
  VersionChain chain;
  add(chain, 3, 1, 5, {0, 5, 0});
  add(chain, 3, 2, 7, {0, 6, 7});  // behind on read site 1 (6 < 7)
  auto r = chain.select_update(vc({0, 7, 0}), {false, true, false}, true);
  EXPECT_EQ(r.value, "v7");
}

TEST(UpdateSelect, VisibilityMaskStillApplies) {
  VersionChain chain;
  add(chain, 3, 1, 5, {0, 5, 0});
  add(chain, 3, 1, 9, {0, 9, 0});  // ahead on the read site -> invisible
  auto r = chain.select_update(vc({0, 7, 0}), {false, true, false}, true);
  EXPECT_EQ(r.value, "v5");
}

TEST(UpdateSelect, ExclusionRequiresAheadOnUnreadSite) {
  // Equal on read sites but NOT ahead anywhere unread: the version is a
  // committed predecessor, not a concurrency suspect.
  VersionChain chain;
  add(chain, 3, 1, 5, {0, 5, 0});
  add(chain, 3, 1, 7, {0, 7, 0});
  auto r = chain.select_update(vc({0, 7, 5}), {false, true, false}, true);
  EXPECT_EQ(r.value, "v7");
}

// ---- Walter selection ----

TEST(WalterSelect, VisibleByOriginSeqOnly) {
  VersionChain chain;
  add(chain, 3, 1, 5);
  add(chain, 3, 2, 9);
  // Snapshot covers origin 1 up to 5 but origin 2 only up to 8.
  auto r = chain.select_walter(vc({0, 5, 8}));
  EXPECT_EQ(r.value, "v5");
  // After the propagate arrives, seq 9 becomes visible.
  EXPECT_EQ(chain.select_walter(vc({0, 5, 9})).value, "v9");
}

TEST(WalterSelect, SnapshotNeverSeesFutureLocalCommits) {
  VersionChain chain;
  add(chain, 2, 0, 1);
  add(chain, 2, 0, 2);
  add(chain, 2, 0, 3);
  EXPECT_EQ(chain.select_walter(vc({2, 0})).value, "v2");
}

TEST(WalterSelect, InitialLoadAlwaysVisible) {
  VersionChain chain;
  chain.install("init", VectorClock(2), 0, 0);
  EXPECT_EQ(chain.select_walter(vc({0, 0})).value, "init");
}

// ---- validation (Alg. 5 lines 27-34) ----

TEST(ValidateTest, PassesWhenSnapshotCoversLatest) {
  VersionChain chain;
  add(chain, 2, 1, 7, {2, 7});
  EXPECT_TRUE(chain.validate(vc({2, 7})));
  EXPECT_TRUE(chain.validate(vc({0, 9})));
}

TEST(ValidateTest, FailsWhenLatestIsAhead) {
  VersionChain chain;
  add(chain, 2, 1, 7, {2, 7});
  EXPECT_FALSE(chain.validate(vc({9, 6})))
      << "stale snapshot on the updater's site must fail validation";
}

TEST(ValidateTest, EmptyChainAlwaysValid) {
  VersionChain chain;
  EXPECT_TRUE(chain.validate(vc({0, 0})));
}

// ---- collect (Alg. 5 lines 8-10) ----

TEST(CollectTest, GathersAllAccessSets) {
  VersionChain chain;
  add(chain, 2, 0, 1).access_set_insert(TxId(1, 0, 1));
  Version& v2 = add(chain, 2, 0, 2);
  v2.access_set_insert(TxId(1, 0, 2));
  v2.access_set_insert(TxId(2, 0, 3));
  std::vector<TxId> out;
  chain.collect_access_sets(out);
  EXPECT_EQ(out.size(), 3u);
}

// Parameterized sweep: for any chain and mask, the RO selection never
// returns a version that violates the masked visibility rule, and always
// returns the freshest non-excluded candidate.
class SelectionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SelectionPropertyTest, ReadOnlySelectionIsMaximalAndVisible) {
  std::mt19937_64 rng(GetParam() * 131 + 17);
  for (int iter = 0; iter < 60; ++iter) {
    const std::size_t nodes = 2 + rng() % 4;
    VersionChain chain;
    for (int v = 0; v < 12; ++v) {
      VectorClock commit_vc(nodes);
      for (std::size_t i = 0; i < nodes; ++i) commit_vc[i] = rng() % 6;
      const auto origin = static_cast<NodeId>(rng() % nodes);
      const SeqNo seq = rng() % 6 + 1;
      commit_vc[origin] = seq;
      chain.install("x", std::move(commit_vc), origin, seq);
    }
    VectorClock tvc(nodes);
    std::vector<bool> mask(nodes);
    for (std::size_t i = 0; i < nodes; ++i) {
      tvc[i] = rng() % 6;
      mask[i] = rng() % 2 == 0;
    }
    const TxId reader(9, 9, static_cast<std::uint32_t>(iter));
    auto r = chain.select_read_only(tvc, mask, reader);
    ASSERT_TRUE(r.found);
    bool exists_fresher_visible = false;
    for (const auto& v : chain.versions()) {
      if (v.id <= r.id) continue;
      if (v.vc.leq_masked(tvc, mask) && !v.access_set_contains(reader)) {
        // The only id the reader occupies is the one it was just given.
        exists_fresher_visible = true;
      }
    }
    EXPECT_FALSE(exists_fresher_visible)
        << "selection skipped a fresher visible version";
    // The returned version is visible under the mask (unless fallback).
    EXPECT_TRUE(r.vc.leq_masked(tvc, mask) || chain.versions().front().id == r.id);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionPropertyTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace fwkv::store
