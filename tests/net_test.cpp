// DelayQueue, Executor and SimNetwork behaviour.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include "net/delay_queue.hpp"
#include "net/executor.hpp"
#include "net/network.hpp"

namespace fwkv::net {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

TEST(DelayQueueTest, RunsTask) {
  DelayQueue q;
  std::atomic<bool> ran{false};
  q.run_after(0ms, [&] { ran = true; });
  for (int i = 0; i < 1000 && !ran; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(ran);
}

TEST(DelayQueueTest, HonorsDelay) {
  DelayQueue q;
  std::atomic<bool> ran{false};
  const auto t0 = Clock::now();
  std::atomic<std::int64_t> elapsed_ms{0};
  q.run_after(30ms, [&] {
    elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                     Clock::now() - t0)
                     .count();
    ran = true;
  });
  for (int i = 0; i < 2000 && !ran; ++i) std::this_thread::sleep_for(1ms);
  ASSERT_TRUE(ran);
  EXPECT_GE(elapsed_ms.load(), 28);
}

TEST(DelayQueueTest, OrdersByDeadlineThenSubmission) {
  DelayQueue q;
  std::mutex mu;
  std::vector<int> order;
  auto push = [&](int v) {
    std::lock_guard<std::mutex> lock(mu);
    order.push_back(v);
  };
  q.run_after(20ms, [&] { push(3); });
  q.run_after(5ms, [&] { push(1); });
  q.run_after(5ms, [&] { push(2); });  // same deadline: submission order
  std::this_thread::sleep_for(100ms);
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(DelayQueueTest, PendingCount) {
  DelayQueue q;
  q.run_after(1h, [] {});
  q.run_after(1h, [] {});
  EXPECT_EQ(q.pending(), 2u);
}

TEST(DelayQueueTest, ShutdownDropsPending) {
  std::atomic<bool> ran{false};
  {
    DelayQueue q;
    q.run_after(1h, [&] { ran = true; });
  }
  EXPECT_FALSE(ran);
}

TEST(DelayQueueTest, SubmitAfterShutdownIsNoop) {
  DelayQueue q;
  q.shutdown();
  q.run_after(0ms, [] { FAIL() << "ran after shutdown"; });
  std::this_thread::sleep_for(10ms);
}

TEST(ExecutorTest, RunsSubmittedTasks) {
  Executor ex(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    ex.submit([&] { count.fetch_add(1); });
  }
  for (int i = 0; i < 1000 && count < 100; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(count.load(), 100);
}

TEST(ExecutorTest, DrainsQueueOnShutdown) {
  std::atomic<int> count{0};
  {
    Executor ex(1);
    for (int i = 0; i < 50; ++i) {
      ex.submit([&] {
        std::this_thread::sleep_for(100us);
        count.fetch_add(1);
      });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ExecutorTest, ParallelismAcrossWorkers) {
  Executor ex(2);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  std::atomic<int> done{0};
  for (int i = 0; i < 20; ++i) {
    ex.submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int p = peak.load();
      while (now > p && !peak.compare_exchange_weak(p, now)) {
      }
      std::this_thread::sleep_for(2ms);
      concurrent.fetch_sub(1);
      done.fetch_add(1);
    });
  }
  for (int i = 0; i < 2000 && done < 20; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_EQ(done.load(), 20);
  EXPECT_GE(peak.load(), 2);
}

// A minimal endpoint that records what it receives and can echo replies.
class RecordingEndpoint : public NodeEndpoint {
 public:
  explicit RecordingEndpoint(SimNetwork* net, NodeId id)
      : net_(net), id_(id) {}

  void handle_message(Message msg, NodeId from) override {
    if (auto* rr = std::get_if<ReadRequest>(&msg)) {
      ReadReturn ret;
      ret.rpc_id = rr->rpc_id;
      ret.found = true;
      ret.value = "echo-" + std::to_string(rr->key);
      net_->send(id_, rr->reply_to, std::move(ret));
      return;
    }
    received_.fetch_add(1);
    (void)from;
  }
  std::size_t pending_work() const override { return 0; }

  std::atomic<int> received_{0};

 private:
  SimNetwork* net_;
  NodeId id_;
};

NetConfig fast_net() {
  NetConfig cfg;
  cfg.one_way_latency = 0ns;
  return cfg;
}

TEST(SimNetworkTest, DeliversOneWayMessages) {
  SimNetwork net(2, fast_net());
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  net.send(0, 1, RemoveMessage{TxId(1, 1, 1), {5}});
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(b.received_.load(), 1);
  EXPECT_EQ(a.received_.load(), 0);
}

TEST(SimNetworkTest, RpcRoundTrip) {
  SimNetwork net(2, fast_net());
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  ReadRequest req;
  req.tx.id = TxId(0, 0, 1);
  req.key = 42;
  auto call = net.send_request(0, 1, std::move(req));
  auto reply = call.await(1s);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(std::get<ReadReturn>(*reply).value, "echo-42");
}

TEST(SimNetworkTest, RpcTimeoutReturnsNullopt) {
  SimNetwork net(2, fast_net());
  RecordingEndpoint a(&net, 0);
  // Endpoint 1 swallows requests (no reply): wire a recording endpoint but
  // send a Prepare, which it does not answer.
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  PrepareRequest req;
  req.tx = TxId(0, 0, 1);
  auto call = net.send_request(0, 1, std::move(req));
  EXPECT_FALSE(call.await(20ms).has_value());
}

TEST(SimNetworkTest, LatencyIsApplied) {
  NetConfig cfg;
  cfg.one_way_latency = 20ms;
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  const auto t0 = Clock::now();
  ReadRequest req;
  req.key = 1;
  auto call = net.send_request(0, 1, std::move(req));
  ASSERT_TRUE(call.await(5s).has_value());
  const auto rtt = Clock::now() - t0;
  EXPECT_GE(rtt, 38ms);  // two 20 ms hops, minus timer slack
}

TEST(SimNetworkTest, LoopbackSkipsLatency) {
  NetConfig cfg;
  cfg.one_way_latency = 50ms;
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  net.register_endpoint(0, &a);

  const auto t0 = Clock::now();
  ReadRequest req;
  req.key = 1;
  auto call = net.send_request(0, 0, std::move(req));
  ASSERT_TRUE(call.await(5s).has_value());
  EXPECT_LT(Clock::now() - t0, 40ms);
}

TEST(SimNetworkTest, PropagateExtraDelay) {
  NetConfig cfg;
  cfg.one_way_latency = 0ns;
  cfg.propagate_extra_delay = 30ms;
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  net.send(0, 1, PropagateMessage{0, 1, 1});
  std::this_thread::sleep_for(10ms);
  EXPECT_EQ(b.received_.load(), 0) << "propagate arrived before its delay";
  ASSERT_TRUE(net.wait_quiescent(5s));
  EXPECT_EQ(b.received_.load(), 1);
}

TEST(SimNetworkTest, MessageCountersByType) {
  SimNetwork net(2, fast_net());
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  net.send(0, 1, RemoveMessage{TxId(1, 1, 1), {1}});
  net.send(0, 1, RemoveMessage{TxId(1, 1, 2), {2}});
  net.send(0, 1, PropagateMessage{0, 1, 1});
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(net.messages_sent(MessageType::kRemove), 2u);
  EXPECT_EQ(net.messages_sent(MessageType::kPropagate), 1u);
  EXPECT_EQ(net.messages_sent(MessageType::kReadRequest), 0u);
}

TEST(SimNetworkTest, SerializationModeCountsBytes) {
  NetConfig cfg = fast_net();
  cfg.serialize_messages = true;
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  net.send(0, 1, RemoveMessage{TxId(1, 1, 1), {1}});
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_GT(net.bytes_sent(), 0u);
  EXPECT_EQ(b.received_.load(), 1);
}

TEST(SimNetworkTest, SendHookObservesMessages) {
  SimNetwork net(2, fast_net());
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  std::atomic<int> hooked{0};
  net.set_send_hook([&](NodeId from, NodeId to, const Message& m) {
    EXPECT_EQ(from, 0u);
    EXPECT_EQ(to, 1u);
    EXPECT_EQ(type_of(m), MessageType::kRemove);
    hooked.fetch_add(1);
  });
  net.send(0, 1, RemoveMessage{TxId(1, 1, 1), {1}});
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(hooked.load(), 1);
}

TEST(SimNetworkTest, QuiescentWhenIdle) {
  SimNetwork net(2, fast_net());
  RecordingEndpoint a(&net, 0);
  net.register_endpoint(0, &a);
  EXPECT_TRUE(net.wait_quiescent(100ms));
}

TEST(SimNetworkTest, ScheduleRunsTask) {
  SimNetwork net(1, fast_net());
  std::atomic<bool> ran{false};
  net.schedule(1ms, [&] { ran = true; });
  for (int i = 0; i < 1000 && !ran; ++i) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(ran);
}

TEST(SimNetworkTest, LinkLatencyMatrixOverridesPerLink) {
  NetConfig cfg;
  cfg.one_way_latency = 0ns;
  // 3 nodes; only the 0->2 link is slow. -1 entries fall back to
  // one_way_latency.
  cfg.link_latency.assign(3, std::vector<std::chrono::nanoseconds>(3, -1ns));
  cfg.link_latency[0][2] = 40ms;
  SimNetwork net(3, cfg);
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  RecordingEndpoint c(&net, 2);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);
  net.register_endpoint(2, &c);

  auto rtt_to = [&](NodeId to) {
    const auto t0 = Clock::now();
    ReadRequest req;
    req.key = 7;
    auto call = net.send_request(0, to, std::move(req));
    EXPECT_TRUE(call.await(5s).has_value());
    return Clock::now() - t0;
  };
  EXPECT_LT(rtt_to(1), 30ms);   // fallback link: effectively instant
  EXPECT_GE(rtt_to(2), 38ms);   // 40 ms out, 0 ms (fallback) back
}

TEST(SimNetworkTest, TwoRegionMatrixValues) {
  const auto m = SimNetwork::two_region_matrix(4, 2, 1ms, 30ms);
  ASSERT_EQ(m.size(), 4u);
  for (std::uint32_t from = 0; from < 4; ++from) {
    ASSERT_EQ(m[from].size(), 4u);
    for (std::uint32_t to = 0; to < 4; ++to) {
      const bool cross = (from < 2) != (to < 2);
      EXPECT_EQ(m[from][to], cross ? 30ms : 1ms)
          << "link " << from << "->" << to;
    }
  }
}

TEST(SimNetworkTest, JitterStaysWithinBounds) {
  NetConfig cfg;
  cfg.one_way_latency = 5ms;
  cfg.jitter = 5ms;
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  for (int i = 0; i < 5; ++i) {
    const auto t0 = Clock::now();
    ReadRequest req;
    req.key = static_cast<Key>(i);
    auto call = net.send_request(0, 1, std::move(req));
    ASSERT_TRUE(call.await(5s).has_value());
    const auto rtt = Clock::now() - t0;
    // Two hops of [5 ms, 10 ms] each; generous upper slack for scheduling,
    // but a unit mistake (jitter in us vs ms, or unbounded draw) would trip.
    EXPECT_GE(rtt, 8ms);
    EXPECT_LT(rtt, 500ms);
  }
}

// ---- deterministic fault injection -------------------------------------

TEST(FaultInjectorTest, SameSeedSameDecisions) {
  FaultPlan plan = FaultPlan::uniform(/*seed=*/77, 0.3, 0.3, 0.3);
  FaultInjector x(plan, 4);
  FaultInjector y(plan, 4);
  for (int i = 0; i < 2000; ++i) {
    const NodeId from = static_cast<NodeId>(i % 4);
    const NodeId to = static_cast<NodeId>((i + 1) % 4);
    const auto type = static_cast<MessageType>(i % kNumMessageTypes);
    const auto dx = x.decide(from, to, type, 0);
    const auto dy = y.decide(from, to, type, 0);
    EXPECT_EQ(dx.drop, dy.drop);
    EXPECT_EQ(dx.duplicate, dy.duplicate);
    EXPECT_EQ(dx.extra_ns, dy.extra_ns);
    EXPECT_EQ(dx.dup_extra_ns, dy.dup_extra_ns);
    EXPECT_EQ(dx.index, dy.index);
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultPlan a = FaultPlan::uniform(1, 0.5);
  FaultPlan b = FaultPlan::uniform(2, 0.5);
  FaultInjector x(a, 2);
  FaultInjector y(b, 2);
  int differing = 0;
  for (int i = 0; i < 500; ++i) {
    if (x.decide(0, 1, MessageType::kDecide, 0).drop !=
        y.decide(0, 1, MessageType::kDecide, 0).drop) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 0);
}

TEST(SimNetworkFaultTest, SameSeedSameFaultSchedule) {
  // Two networks with the same plan, fed the same single-threaded message
  // sequence, must emit identical fault-event streams.
  auto run = [] {
    NetConfig cfg;
    cfg.one_way_latency = 0ns;
    cfg.faults = FaultPlan::uniform(/*seed=*/42, 0.25, 0.25, 0.25);
    SimNetwork net(2, cfg);
    RecordingEndpoint a(&net, 0);
    RecordingEndpoint b(&net, 1);
    net.register_endpoint(0, &a);
    net.register_endpoint(1, &b);
    std::vector<FaultEvent> events;
    std::mutex mu;
    net.set_fault_hook([&](const FaultEvent& ev) {
      std::lock_guard<std::mutex> lock(mu);
      events.push_back(ev);
    });
    for (int i = 0; i < 400; ++i) {
      net.send(0, 1, RemoveMessage{TxId(1, 1, static_cast<std::uint32_t>(i)),
                                   {static_cast<Key>(i)}});
    }
    EXPECT_TRUE(net.wait_quiescent(5s));
    return events;
  };
  const auto first = run();
  const auto second = run();
  EXPECT_FALSE(first.empty()) << "25% fault rates injected nothing";
  EXPECT_EQ(first, second);
}

TEST(SimNetworkFaultTest, DropProbabilityOneDropsEverything) {
  NetConfig cfg;
  cfg.one_way_latency = 0ns;
  cfg.faults.seed = 9;
  cfg.faults.message[static_cast<std::size_t>(MessageType::kRemove)].drop =
      1.0;
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  for (int i = 0; i < 50; ++i) {
    net.send(0, 1, RemoveMessage{TxId(1, 1, static_cast<std::uint32_t>(i)),
                                 {1}});
  }
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(b.received_.load(), 0);
  EXPECT_EQ(net.faults_injected(FaultKind::kDrop), 50u);
  // Untargeted classes are untouched.
  net.send(0, 1, PropagateMessage{0, 1, 1});
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(b.received_.load(), 1);
}

TEST(SimNetworkFaultTest, LoopbackIsNeverFaulted) {
  NetConfig cfg;
  cfg.one_way_latency = 0ns;
  cfg.faults = FaultPlan::uniform(/*seed=*/5, /*drop=*/1.0);
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  net.register_endpoint(0, &a);
  for (int i = 0; i < 20; ++i) {
    net.send(0, 0, RemoveMessage{TxId(1, 1, static_cast<std::uint32_t>(i)),
                                 {1}});
  }
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(a.received_.load(), 20);
  EXPECT_EQ(net.faults_injected(FaultKind::kDrop), 0u);
}

TEST(SimNetworkFaultTest, DuplicateProbabilityOneDeliversTwice) {
  NetConfig cfg;
  cfg.one_way_latency = 0ns;
  cfg.faults.seed = 11;
  cfg.faults.message[static_cast<std::size_t>(MessageType::kRemove)]
      .duplicate = 1.0;
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  for (int i = 0; i < 25; ++i) {
    net.send(0, 1, RemoveMessage{TxId(1, 1, static_cast<std::uint32_t>(i)),
                                 {1}});
  }
  ASSERT_TRUE(net.wait_quiescent(5s));
  EXPECT_EQ(b.received_.load(), 50);
  EXPECT_EQ(net.faults_injected(FaultKind::kDuplicate), 25u);
}

TEST(SimNetworkFaultTest, PartitionWindowDropsThenHeals) {
  NetConfig cfg;
  cfg.one_way_latency = 0ns;
  cfg.faults.seed = 3;
  cfg.faults.partitions.push_back(
      LinkPartition{/*a=*/0, /*b=*/1, /*start=*/0ms, /*duration=*/150ms,
                    /*bidirectional=*/true});
  SimNetwork net(2, cfg);
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  net.send(0, 1, RemoveMessage{TxId(1, 1, 1), {1}});
  net.send(1, 0, RemoveMessage{TxId(1, 1, 2), {2}});
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(a.received_.load(), 0);
  EXPECT_EQ(b.received_.load(), 0);
  EXPECT_EQ(net.faults_injected(FaultKind::kPartitionDrop), 2u);

  std::this_thread::sleep_for(200ms);  // past the heal time
  net.send(0, 1, RemoveMessage{TxId(1, 1, 3), {3}});
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(b.received_.load(), 1);
  EXPECT_EQ(net.faults_injected(FaultKind::kPartitionDrop), 2u);
}

TEST(SimNetworkFaultTest, PauseNodeDefersDelivery) {
  SimNetwork net(2, fast_net());
  RecordingEndpoint a(&net, 0);
  RecordingEndpoint b(&net, 1);
  net.register_endpoint(0, &a);
  net.register_endpoint(1, &b);

  net.pause_node(1, 150ms);
  const auto t0 = Clock::now();
  net.send(0, 1, RemoveMessage{TxId(1, 1, 1), {1}});
  std::this_thread::sleep_for(30ms);
  EXPECT_EQ(b.received_.load(), 0) << "delivered into the pause window";
  ASSERT_TRUE(net.wait_quiescent(5s));
  EXPECT_EQ(b.received_.load(), 1);
  EXPECT_GE(Clock::now() - t0, 140ms);
  EXPECT_EQ(net.faults_injected(FaultKind::kPauseDeferral), 1u);
  // The paused node could still send the whole time.
  net.send(1, 0, RemoveMessage{TxId(1, 1, 2), {2}});
  ASSERT_TRUE(net.wait_quiescent(1s));
  EXPECT_EQ(a.received_.load(), 1);
}

TEST(SimNetworkFaultTest, InertPlanInstallsNoInjector) {
  SimNetwork net(2, fast_net());
  EXPECT_FALSE(net.faults_active());
  NetConfig cfg;
  cfg.faults = FaultPlan::uniform(1, 0.01);
  SimNetwork chaotic(2, cfg);
  EXPECT_TRUE(chaotic.faults_active());
}

}  // namespace
}  // namespace fwkv::net
